//! Canonical metric names for the fault-injection and retry layers.
//!
//! The fault subsystem spans three crates — the simulator injects the
//! faults, the attack pipeline retries through them, and the harness
//! reports both in every envelope. These constants pin the shared
//! vocabulary so a counter incremented in `crates/sim` is the same
//! string a CI assertion greps for in a result envelope.
//!
//! Naming scheme: `fault.medium.*` for impairments of the shared
//! radio medium, `fault.device.*` for injected device misbehaviour,
//! `retry.*` for the attacker-side recovery loop, and
//! `harness.trial_failures` for trials that degraded gracefully.

/// Counter: frames that would have decoded but were corrupted by
/// injected burst loss (Gilbert–Elliott).
pub const FAULT_MEDIUM_FRAMES_DROPPED: &str = "fault.medium.frames_dropped";

/// Counter: fault-injected device stalls that fired.
pub const FAULT_DEVICE_STALLS: &str = "fault.device.stalls";

/// Histogram: duration of each injected stall, µs.
pub const FAULT_DEVICE_STALL_US: &str = "fault.device.stall_us";

/// Counter: stalls that ended in a cold boot.
pub const FAULT_DEVICE_REBOOTS: &str = "fault.device.reboots";

/// Counter: SIFS-timed responses (ACK/CTS) a stalled device never sent.
pub const FAULT_DEVICE_RESPONSES_SUPPRESSED: &str = "fault.device.responses_suppressed";

/// Counter: frames that arrived while the receiver was stalled.
pub const FAULT_DEVICE_RX_DROPPED_STALLED: &str = "fault.device.rx_dropped_stalled";

/// Counter: attacker-side retry injections beyond the first attempt.
pub const RETRY_ATTEMPTS: &str = "retry.attempts";

/// Histogram: deterministic jittered backoff delays applied between
/// retries, µs.
pub const RETRY_BACKOFF_US: &str = "retry.backoff_us";

/// Counter: targets quarantined after exhausting the retry budget or
/// the per-target verify timeout.
pub const RETRY_QUARANTINED: &str = "retry.quarantined";

/// Counter: trials that panicked or aborted and were recorded as
/// structured failures instead of killing the run.
pub const HARNESS_TRIAL_FAILURES: &str = "harness.trial_failures";

#[cfg(test)]
mod tests {
    #[test]
    fn names_are_distinct() {
        let all = [
            super::FAULT_MEDIUM_FRAMES_DROPPED,
            super::FAULT_DEVICE_STALLS,
            super::FAULT_DEVICE_STALL_US,
            super::FAULT_DEVICE_REBOOTS,
            super::FAULT_DEVICE_RESPONSES_SUPPRESSED,
            super::FAULT_DEVICE_RX_DROPPED_STALLED,
            super::RETRY_ATTEMPTS,
            super::RETRY_BACKOFF_US,
            super::RETRY_QUARANTINED,
            super::HARNESS_TRIAL_FAILURES,
        ];
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
