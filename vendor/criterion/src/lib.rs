//! Vendored, API-compatible subset of `criterion`.
//!
//! The build environment has no registry access, so this crate puts a
//! plain calibrated timing loop behind the criterion API the workspace's
//! benches use (`benchmark_group`, `throughput`, `sample_size`,
//! `bench_function`, `iter`, `iter_batched`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros). It reports mean
//! wall-clock time per iteration plus derived throughput — no outlier
//! rejection, HTML reports, or statistical comparison against baselines.

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to derive a throughput figure.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortises setup (ignored by the timing loop; the
/// vendored implementation always times the routine per batch of one).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` over enough iterations for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count taking ≳10ms.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                *self.result = Some(elapsed / iters as u32);
                break;
            }
            iters *= 2;
        }
        let _ = self.samples;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let budget = Duration::from_millis(50).max(Duration::ZERO);
        while total < budget && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        if iters > 0 {
            *self.result = Some(total / iters as u32);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, samples: usize) {
        self.samples = samples;
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.samples,
            result: &mut result,
        };
        f(&mut bencher);
        report(&self.name, id, result, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            samples: 100,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut result = None;
        let mut bencher = Bencher {
            samples: 100,
            result: &mut result,
        };
        f(&mut bencher);
        report("bench", id, result, None);
        self
    }
}

fn report(group: &str, id: &str, result: Option<Duration>, throughput: Option<Throughput>) {
    let Some(per_iter) = result else {
        println!("{group}/{id}: no measurement");
        return;
    };
    let nanos = per_iter.as_nanos().max(1) as f64;
    let time = if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else {
        format!("{:.2} ms", nanos / 1_000_000.0)
    };
    match throughput {
        Some(Throughput::Bytes(b)) => {
            let rate = b as f64 / (nanos / 1e9) / (1024.0 * 1024.0);
            println!("{group}/{id}: {time}/iter ({rate:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (nanos / 1e9);
            println!("{group}/{id}: {time}/iter ({rate:.0} elem/s)");
        }
        None => println!("{group}/{id}: {time}/iter"),
    }
}

/// Collects benchmark functions into a runner callable from `main`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Generates `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_a_duration() {
        let mut result = None;
        let mut b = Bencher {
            samples: 10,
            result: &mut result,
        };
        b.iter(|| black_box(41u64) + 1);
        assert!(result.is_some());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut result = None;
        let mut b = Bencher {
            samples: 10,
            result: &mut result,
        };
        b.iter_batched(
            || vec![1u8; 64],
            |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(result.is_some());
    }
}
