//! E10 — the city-scale wardrive: 100k (or 1M) synthetic devices on the
//! spatial-cell simulator core.
//!
//! Where E5 reproduces Table 2's exact 5,328-device census, this
//! experiment answers the scale question the paper's §5 gestures at:
//! what does the survey cost at city volume? A synthetic population is
//! scattered over a 3 km × 3 km square, partitioned into per-channel
//! neighbourhood segments, and driven through with the interference-cell
//! grid and calendar-queue scheduler (DESIGN.md §11).
//!
//! Scale knobs:
//!
//! - `POLITE_WIFI_CITY_DEVICES=1000000` overrides the 100,000-device
//!   default (the million-device run).
//! - `--quick` shrinks the per-segment dwell, **not** the device count —
//!   the city stays city-sized, each neighbourhood is just visited more
//!   briefly.
//! - `--workers N` fans segments over the worker pool; the result
//!   envelope is byte-identical at every worker count (nothing
//!   wall-clock-dependent is recorded in it).

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::CityWardrive;
use polite_wifi_harness::{Experiment, RunArgs};
use polite_wifi_obs::Obs;

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();

    let devices = match std::env::var("POLITE_WIFI_CITY_DEVICES") {
        Ok(raw) => raw
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("POLITE_WIFI_CITY_DEVICES: invalid value `{raw}`")),
        Err(_) => 100_000,
    };
    let drive = CityWardrive {
        seed: exp.seed(),
        devices,
        dwell_us: if args.quick { 500_000 } else { 1_000_000 },
        faults: args.faults,
        ..CityWardrive::default()
    };
    println!(
        "\ncity: {} devices over {:.1} km², segments of {}, {} ms dwell, {} worker(s)",
        drive.devices,
        (drive.area_m / 1000.0) * (drive.area_m / 1000.0),
        drive.segment_size,
        drive.dwell_us / 1000,
        args.workers
    );

    let start = std::time::Instant::now();
    let mut obs = Obs::new();
    let report = drive.run_observed(args.workers, &mut obs);
    let wall_s = start.elapsed().as_secs_f64();
    exp.absorb_obs(obs);

    let events_per_sec = report.events_dispatched as f64 / wall_s.max(1e-9);
    println!(
        "drive done in {:.1} s wall / {:.0} s simulated — {} events at {:.2} M events/s \
         across {} worker(s)",
        wall_s,
        report.survey_time_us as f64 / 1e6,
        report.events_dispatched,
        events_per_sec / 1e6,
        args.workers
    );

    // Only deterministic quantities go into the envelope (wall time and
    // events/s are printed above instead), so the result JSON stays
    // byte-identical at workers 1, 4 and 8.
    exp.metrics.record("devices", report.devices as f64);
    exp.metrics.record("segments", report.segments as f64);
    exp.metrics.record("discovered", report.discovered as f64);
    exp.metrics.record("verified", report.verified as f64);
    exp.metrics
        .record("events_dispatched", report.events_dispatched as f64);
    exp.metrics
        .record("occupied_cells", report.occupied_cells as f64);
    exp.metrics
        .record("survey_time_s", report.survey_time_us as f64 / 1e6);
    exp.obs.add("wardrive.discovered", report.discovered as u64);
    exp.obs.add("wardrive.verified", report.verified as u64);

    compare(
        "devices in range that ACKed our fakes",
        "all discovered (100%)",
        &format!(
            "{}/{} ({:.1}%)",
            report.verified,
            report.discovered,
            100.0 * report.verified as f64 / report.discovered.max(1) as f64
        ),
    );

    // The drive only hears what transmits within the 150 m cutoff of its
    // path, so discovery is sparse by design — but a silent city means
    // the propagation plumbing broke.
    assert!(report.discovered > 0, "the whole city stayed silent");
    assert!(
        report.verified > 0,
        "no discovered device ACKed: {report:?}"
    );
    assert!(report.occupied_cells > 0, "cell grid never populated");

    exp.finish_with_status(
        if args.quick {
            "city_wardrive_quick"
        } else {
            "city_wardrive"
        },
        &report,
    )
}
