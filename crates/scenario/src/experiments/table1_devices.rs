//! E2 — Table 1: the five tested chipsets/devices all exhibit Polite WiFi.
//!
//! Reconstructs each Table 1 device as a simulated station with its
//! band/standard/behaviour profile and verifies that fake frames are
//! acknowledged by every one of them. The five device scenarios are
//! independent, so they fan out over the harness worker pool.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::{AckVerifier, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_devices::Table1Device;
use polite_wifi_frame::MacAddr;
use polite_wifi_harness::{derive_trial_seed, Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_mac::{Role, StationConfig};
use polite_wifi_phy::rate::BitRate;
use serde::Serialize;

#[derive(Serialize)]
struct DeviceRow {
    device: String,
    chipset: String,
    standard: String,
    fakes: u64,
    acks: usize,
    responds: bool,
}

fn device_row(
    i: usize,
    base_seed: u64,
    faults: polite_wifi_sim::FaultProfile,
) -> (DeviceRow, polite_wifi_obs::Obs) {
    let profile = Table1Device::ALL[i].profile();
    let victim_mac = MacAddr::new([0x02, 0xd1, 0x00, 0x00, 0x00, i as u8 + 1]);

    let mut sb = ScenarioBuilder::new().duration_us(3_000_000).faults(faults);
    let mut cfg = StationConfig::client(victim_mac);
    cfg.role = profile.role;
    cfg.band = profile.band;
    cfg.channel = profile.band.default_channel();
    cfg.behavior = profile.behavior;
    if profile.role == Role::AccessPoint {
        cfg.ssid = "GoogleWifi".into();
        cfg.beacon_interval_us = Some(102_400);
    }
    let _victim = sb.station(cfg, (0.0, 0.0));
    // The dongle tunes to the victim's band/channel.
    let mut attacker_cfg = StationConfig::client(MacAddr::FAKE);
    attacker_cfg.band = profile.band;
    attacker_cfg.channel = profile.band.default_channel();
    let attacker = sb.station(attacker_cfg, (5.0, 0.0));
    sb.set_monitor(attacker);
    let mut scenario = sb.build_with_seed(derive_trial_seed(base_seed, i as u64));

    // 20 fakes over 2 s; power-save devices may doze so we expect the
    // injector to land at least a solid majority, and ≥1 suffices to
    // demonstrate the behaviour (the paper's criterion).
    let plan = InjectionPlan {
        victim: victim_mac,
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::NullData,
        rate_pps: 20,
        start_us: 10_000,
        duration_us: 2_000_000,
        bitrate: if profile.band == polite_wifi_phy::band::Band::Ghz5 {
            BitRate::Mbps6 // no DSSS rates on 5 GHz
        } else {
            BitRate::Mbps1
        },
    };
    let fakes = FakeFrameInjector::new(attacker).execute(&mut scenario.sim, &plan);
    let sim = scenario.run();

    let acks = AckVerifier::new(MacAddr::FAKE)
        .verify(&sim.node(attacker).capture)
        .len();
    let row = DeviceRow {
        device: profile.device,
        chipset: profile.chipset,
        standard: profile.standard.label().to_string(),
        fakes,
        acks,
        responds: acks > 0,
    };
    (row, scenario.sim.take_obs())
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let seed = exp.seed();
    let faults = exp.args().faults;
    let results = exp
        .runner()
        .run_indexed(Table1Device::ALL.len(), |i| device_row(i, seed, faults));
    let mut rows = Vec::with_capacity(results.len());
    for (row, obs) in results {
        exp.absorb_obs(obs);
        rows.push(row);
    }

    println!(
        "\n{:<22} {:<18} {:<8} {:>6} {:>6}  verdict",
        "Device", "WiFi module", "Std", "fakes", "ACKs"
    );
    for r in &rows {
        println!(
            "{:<22} {:<18} {:<8} {:>6} {:>6}  {}",
            r.device,
            r.chipset,
            r.standard,
            r.fakes,
            r.acks,
            if r.responds { "POLITE" } else { "silent" }
        );
        exp.metrics.record("acks_per_device", r.acks as f64);
    }

    println!();
    compare(
        "devices responding to fake frames",
        "5/5",
        &format!("{}/5", rows.iter().filter(|r| r.responds).count()),
    );
    if faults.is_clean() {
        assert!(rows.iter().all(|r| r.responds), "a device went impolite");
    }
    exp.finish_with_status(&spec.slug, &rows)
}
