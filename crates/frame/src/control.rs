//! The 16-bit Frame Control field and the control-frame codec.
//!
//! Control frames are the paper's trump card (Section 2.2): they *cannot*
//! be encrypted, because every station in the vicinity must decode them to
//! honour channel reservations. Even if a future MAC validated data frames
//! before acknowledging, a forged [`ControlFrame::Rts`] still elicits a
//! [`ControlFrame::Cts`] from an unassociated victim.

use crate::addr::MacAddr;
use crate::error::FrameError;
use serde::{Deserialize, Serialize};

/// The 2-bit frame type from the Frame Control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Management frames (beacons, deauthentication, probes, ...). These can
    /// be protected by 802.11w.
    Management,
    /// Control frames (RTS/CTS/ACK/...). These *cannot* be encrypted — every
    /// nearby device must be able to decode them, which is why the paper
    /// argues Polite WiFi is fundamentally unpreventable.
    Control,
    /// Data frames, including the null-function frames the paper injects.
    Data,
    /// 802.11ad/ah extension frames (modelled but not elaborated).
    Extension,
}

impl FrameType {
    /// Decodes the raw 2-bit type field.
    pub fn from_bits(bits: u8) -> FrameType {
        match bits & 0b11 {
            0 => FrameType::Management,
            1 => FrameType::Control,
            2 => FrameType::Data,
            _ => FrameType::Extension,
        }
    }

    /// Encodes to the raw 2-bit type field.
    pub fn bits(self) -> u8 {
        match self {
            FrameType::Management => 0,
            FrameType::Control => 1,
            FrameType::Data => 2,
            FrameType::Extension => 3,
        }
    }
}

/// Management frame subtypes (type = 0).
pub mod mgmt_subtype {
    pub const ASSOC_REQ: u8 = 0;
    pub const ASSOC_RESP: u8 = 1;
    pub const REASSOC_REQ: u8 = 2;
    pub const REASSOC_RESP: u8 = 3;
    pub const PROBE_REQ: u8 = 4;
    pub const PROBE_RESP: u8 = 5;
    pub const BEACON: u8 = 8;
    pub const ATIM: u8 = 9;
    pub const DISASSOC: u8 = 10;
    pub const AUTH: u8 = 11;
    pub const DEAUTH: u8 = 12;
    pub const ACTION: u8 = 13;
}

/// Control frame subtypes (type = 1).
pub mod ctrl_subtype {
    pub const BLOCK_ACK_REQ: u8 = 8;
    pub const BLOCK_ACK: u8 = 9;
    pub const PS_POLL: u8 = 10;
    pub const RTS: u8 = 11;
    pub const CTS: u8 = 12;
    pub const ACK: u8 = 13;
    pub const CF_END: u8 = 14;
}

/// Data frame subtypes (type = 2).
pub mod data_subtype {
    pub const DATA: u8 = 0;
    /// "Null function (No data)" — the fake frame used throughout the paper.
    pub const NULL: u8 = 4;
    pub const QOS_DATA: u8 = 8;
    pub const QOS_NULL: u8 = 12;
}

/// The decoded Frame Control field: protocol version, type/subtype and the
/// eight flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrameControl {
    /// 2-bit protocol version; always 0 on the air today.
    pub version: u8,
    /// Frame type.
    pub ftype: FrameType,
    /// 4-bit subtype (see the `*_subtype` modules).
    pub subtype: u8,
    /// Frame is headed to the distribution system (to an AP).
    pub to_ds: bool,
    /// Frame exits the distribution system (from an AP).
    pub from_ds: bool,
    /// More fragments follow.
    pub more_frag: bool,
    /// This is a retransmission.
    pub retry: bool,
    /// Sender will enter power-save after this exchange; flipped by
    /// battery-powered victims and observed by the drain attack.
    pub power_mgmt: bool,
    /// AP buffers more frames for a dozing station.
    pub more_data: bool,
    /// Frame body is encrypted. The paper's fake frames leave this clear —
    /// and the victim ACKs anyway.
    pub protected: bool,
    /// Order/+HTC bit.
    pub order: bool,
}

impl FrameControl {
    /// A Frame Control with all flags clear.
    pub fn new(ftype: FrameType, subtype: u8) -> FrameControl {
        FrameControl {
            version: 0,
            ftype,
            subtype: subtype & 0x0f,
            to_ds: false,
            from_ds: false,
            more_frag: false,
            retry: false,
            power_mgmt: false,
            more_data: false,
            protected: false,
            order: false,
        }
    }

    /// Decodes from the two on-air bytes (transmitted least significant
    /// byte first).
    pub fn parse(buf: &[u8]) -> Result<FrameControl, FrameError> {
        if buf.len() < 2 {
            return Err(FrameError::Truncated {
                context: "frame control",
                needed: 2,
                available: buf.len(),
            });
        }
        let b0 = buf[0];
        let b1 = buf[1];
        let version = b0 & 0b11;
        if version != 0 {
            return Err(FrameError::BadProtocolVersion(version));
        }
        Ok(FrameControl {
            version,
            ftype: FrameType::from_bits((b0 >> 2) & 0b11),
            subtype: (b0 >> 4) & 0x0f,
            to_ds: b1 & 0x01 != 0,
            from_ds: b1 & 0x02 != 0,
            more_frag: b1 & 0x04 != 0,
            retry: b1 & 0x08 != 0,
            power_mgmt: b1 & 0x10 != 0,
            more_data: b1 & 0x20 != 0,
            protected: b1 & 0x40 != 0,
            order: b1 & 0x80 != 0,
        })
    }

    /// Encodes to the two on-air bytes.
    pub fn encode(&self) -> [u8; 2] {
        let b0 = (self.version & 0b11) | (self.ftype.bits() << 2) | (self.subtype << 4);
        let mut b1 = 0u8;
        if self.to_ds {
            b1 |= 0x01;
        }
        if self.from_ds {
            b1 |= 0x02;
        }
        if self.more_frag {
            b1 |= 0x04;
        }
        if self.retry {
            b1 |= 0x08;
        }
        if self.power_mgmt {
            b1 |= 0x10;
        }
        if self.more_data {
            b1 |= 0x20;
        }
        if self.protected {
            b1 |= 0x40;
        }
        if self.order {
            b1 |= 0x80;
        }
        [b0, b1]
    }

    /// True for null-function and QoS-null data frames — the payload-free
    /// "fake frames" the paper's attacker injects.
    pub fn is_null_data(&self) -> bool {
        self.ftype == FrameType::Data
            && (self.subtype == data_subtype::NULL || self.subtype == data_subtype::QOS_NULL)
    }

    /// Builder-style setter for the retry flag.
    pub fn with_retry(mut self, retry: bool) -> Self {
        self.retry = retry;
        self
    }

    /// Builder-style setter for the power-management flag.
    pub fn with_power_mgmt(mut self, pm: bool) -> Self {
        self.power_mgmt = pm;
        self
    }

    /// Builder-style setter for the protected flag.
    pub fn with_protected(mut self, protected: bool) -> Self {
        self.protected = protected;
        self
    }
}

/// A decoded control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ControlFrame {
    /// Request To Send: reserves the medium for `duration_us`.
    Rts {
        /// NAV reservation in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
    },
    /// Clear To Send: the response an RTS elicits — even from strangers.
    Cts {
        /// Remaining NAV reservation in microseconds.
        duration_us: u16,
        /// Receiver address (copied from the RTS transmitter).
        ra: MacAddr,
    },
    /// Acknowledgement: the "Hi!" the paper's title refers to.
    Ack {
        /// Receiver address (copied from the acknowledged frame's TA).
        ra: MacAddr,
    },
    /// PS-Poll: a dozing station asking its AP for buffered frames.
    PsPoll {
        /// Association id (with the two high bits set on air).
        aid: u16,
        /// BSSID of the AP being polled.
        bssid: MacAddr,
        /// Transmitter (the polling station).
        ta: MacAddr,
    },
    /// BlockAck request (basic variant).
    BlockAckReq {
        /// NAV in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
        /// BAR control field.
        control: u16,
        /// Starting sequence control.
        start_seq: u16,
    },
    /// BlockAck (compressed bitmap variant).
    BlockAck {
        /// NAV in microseconds.
        duration_us: u16,
        /// Receiver address.
        ra: MacAddr,
        /// Transmitter address.
        ta: MacAddr,
        /// BA control field.
        control: u16,
        /// Starting sequence control.
        start_seq: u16,
        /// 64-frame compressed acknowledgement bitmap.
        bitmap: u64,
    },
    /// CF-End: truncates a NAV reservation.
    CfEnd {
        /// Receiver address (broadcast on air).
        ra: MacAddr,
        /// BSSID.
        bssid: MacAddr,
    },
}

impl ControlFrame {
    /// The subtype this frame encodes as.
    pub fn subtype(&self) -> u8 {
        match self {
            ControlFrame::Rts { .. } => ctrl_subtype::RTS,
            ControlFrame::Cts { .. } => ctrl_subtype::CTS,
            ControlFrame::Ack { .. } => ctrl_subtype::ACK,
            ControlFrame::PsPoll { .. } => ctrl_subtype::PS_POLL,
            ControlFrame::BlockAckReq { .. } => ctrl_subtype::BLOCK_ACK_REQ,
            ControlFrame::BlockAck { .. } => ctrl_subtype::BLOCK_ACK,
            ControlFrame::CfEnd { .. } => ctrl_subtype::CF_END,
        }
    }

    /// The receiver address (address 1) of this frame.
    pub fn ra(&self) -> MacAddr {
        match *self {
            ControlFrame::Rts { ra, .. }
            | ControlFrame::Cts { ra, .. }
            | ControlFrame::Ack { ra }
            | ControlFrame::BlockAckReq { ra, .. }
            | ControlFrame::BlockAck { ra, .. }
            | ControlFrame::CfEnd { ra, .. } => ra,
            ControlFrame::PsPoll { bssid, .. } => bssid,
        }
    }

    /// The transmitter address, when the subtype carries one.
    pub fn ta(&self) -> Option<MacAddr> {
        match *self {
            ControlFrame::Rts { ta, .. }
            | ControlFrame::PsPoll { ta, .. }
            | ControlFrame::BlockAckReq { ta, .. }
            | ControlFrame::BlockAck { ta, .. } => Some(ta),
            ControlFrame::CfEnd { bssid, .. } => Some(bssid),
            ControlFrame::Cts { .. } | ControlFrame::Ack { .. } => None,
        }
    }

    /// Encodes header + body (no FCS).
    pub fn encode(&self) -> Vec<u8> {
        let fc = FrameControl::new(FrameType::Control, self.subtype());
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&fc.encode());
        match *self {
            ControlFrame::Rts {
                duration_us,
                ra,
                ta,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
            }
            ControlFrame::Cts { duration_us, ra } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::Ack { ra } => {
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&ra.octets());
            }
            ControlFrame::PsPoll { aid, bssid, ta } => {
                out.extend_from_slice(&(aid | 0xc000).to_le_bytes());
                out.extend_from_slice(&bssid.octets());
                out.extend_from_slice(&ta.octets());
            }
            ControlFrame::BlockAckReq {
                duration_us,
                ra,
                ta,
                control,
                start_seq,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
                out.extend_from_slice(&control.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
            }
            ControlFrame::BlockAck {
                duration_us,
                ra,
                ta,
                control,
                start_seq,
                bitmap,
            } => {
                out.extend_from_slice(&duration_us.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&ta.octets());
                out.extend_from_slice(&control.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
                out.extend_from_slice(&bitmap.to_le_bytes());
            }
            ControlFrame::CfEnd { ra, bssid } => {
                out.extend_from_slice(&0u16.to_le_bytes());
                out.extend_from_slice(&ra.octets());
                out.extend_from_slice(&bssid.octets());
            }
        }
        out
    }

    /// Parses a control frame given its already-decoded Frame Control.
    pub fn parse(fc: FrameControl, buf: &[u8]) -> Result<Self, FrameError> {
        let need = |needed: usize, context: &'static str| -> Result<(), FrameError> {
            if buf.len() < needed {
                Err(FrameError::Truncated {
                    context,
                    needed,
                    available: buf.len(),
                })
            } else {
                Ok(())
            }
        };
        let duration = if buf.len() >= 4 {
            u16::from_le_bytes([buf[2], buf[3]])
        } else {
            0
        };
        match fc.subtype {
            ctrl_subtype::RTS => {
                need(16, "RTS")?;
                Ok(ControlFrame::Rts {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                })
            }
            ctrl_subtype::CTS => {
                need(10, "CTS")?;
                Ok(ControlFrame::Cts {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                })
            }
            ctrl_subtype::ACK => {
                need(10, "ACK")?;
                Ok(ControlFrame::Ack {
                    ra: MacAddr::parse(&buf[4..])?,
                })
            }
            ctrl_subtype::PS_POLL => {
                need(16, "PS-Poll")?;
                Ok(ControlFrame::PsPoll {
                    aid: duration & 0x3fff,
                    bssid: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                })
            }
            ctrl_subtype::BLOCK_ACK_REQ => {
                need(20, "BlockAckReq")?;
                Ok(ControlFrame::BlockAckReq {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                    control: u16::from_le_bytes([buf[16], buf[17]]),
                    start_seq: u16::from_le_bytes([buf[18], buf[19]]),
                })
            }
            ctrl_subtype::BLOCK_ACK => {
                need(28, "BlockAck")?;
                Ok(ControlFrame::BlockAck {
                    duration_us: duration,
                    ra: MacAddr::parse(&buf[4..])?,
                    ta: MacAddr::parse(&buf[10..])?,
                    control: u16::from_le_bytes([buf[16], buf[17]]),
                    start_seq: u16::from_le_bytes([buf[18], buf[19]]),
                    bitmap: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
                })
            }
            ctrl_subtype::CF_END => {
                need(16, "CF-End")?;
                Ok(ControlFrame::CfEnd {
                    ra: MacAddr::parse(&buf[4..])?,
                    bssid: MacAddr::parse(&buf[10..])?,
                })
            }
            other => Err(FrameError::UnsupportedSubtype {
                ftype: FrameType::Control.bits(),
                subtype: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_frame_control_encodes_to_d4() {
        // An ACK is type=control(01), subtype=1101, no flags:
        // b0 = 00 | 01<<2 | 1101<<4 = 0xd4. The classic Wireshark byte.
        let fc = FrameControl::new(FrameType::Control, ctrl_subtype::ACK);
        assert_eq!(fc.encode(), [0xd4, 0x00]);
    }

    #[test]
    fn null_data_frame_control_encodes_to_48() {
        let fc = FrameControl::new(FrameType::Data, data_subtype::NULL);
        assert_eq!(fc.encode(), [0x48, 0x00]);
        assert!(fc.is_null_data());
    }

    #[test]
    fn beacon_frame_control_encodes_to_80() {
        let fc = FrameControl::new(FrameType::Management, mgmt_subtype::BEACON);
        assert_eq!(fc.encode(), [0x80, 0x00]);
    }

    #[test]
    fn rts_frame_control_encodes_to_b4() {
        let fc = FrameControl::new(FrameType::Control, ctrl_subtype::RTS);
        assert_eq!(fc.encode(), [0xb4, 0x00]);
    }

    #[test]
    fn all_flags_round_trip() {
        for bits in 0u16..256 {
            let raw = [0x48u8, bits as u8];
            let fc = FrameControl::parse(&raw).unwrap();
            assert_eq!(fc.encode(), raw);
        }
    }

    #[test]
    fn every_type_subtype_round_trips() {
        for b0 in (0u8..=255).step_by(4) {
            // version bits fixed at 0 by stepping in 4s
            let fc = FrameControl::parse(&[b0, 0]).unwrap();
            assert_eq!(fc.encode()[0], b0);
        }
    }

    #[test]
    fn nonzero_version_rejected() {
        assert!(matches!(
            FrameControl::parse(&[0x01, 0x00]),
            Err(FrameError::BadProtocolVersion(1))
        ));
    }

    #[test]
    fn truncated_rejected() {
        assert!(FrameControl::parse(&[0x48]).is_err());
    }

    #[test]
    fn qos_null_is_null_data() {
        let fc = FrameControl::new(FrameType::Data, data_subtype::QOS_NULL);
        assert!(fc.is_null_data());
        let fc = FrameControl::new(FrameType::Data, data_subtype::QOS_DATA);
        assert!(!fc.is_null_data());
    }

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, last])
    }

    fn round_trip(frame: ControlFrame) {
        let bytes = frame.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert_eq!(ControlFrame::parse(fc, &bytes).unwrap(), frame);
    }

    #[test]
    fn ack_is_ten_bytes_without_fcs() {
        let ack = ControlFrame::Ack { ra: MacAddr::FAKE };
        assert_eq!(ack.encode().len(), 10);
        round_trip(ack);
    }

    #[test]
    fn rts_is_sixteen_bytes_without_fcs() {
        let rts = ControlFrame::Rts {
            duration_us: 248,
            ra: addr(1),
            ta: MacAddr::FAKE,
        };
        assert_eq!(rts.encode().len(), 16);
        round_trip(rts);
    }

    #[test]
    fn cts_round_trip() {
        round_trip(ControlFrame::Cts {
            duration_us: 200,
            ra: MacAddr::FAKE,
        });
    }

    #[test]
    fn ps_poll_aid_masking() {
        let frame = ControlFrame::PsPoll {
            aid: 7,
            bssid: addr(1),
            ta: addr(2),
        };
        let bytes = frame.encode();
        // On air the AID carries 0xc000.
        assert_eq!(u16::from_le_bytes([bytes[2], bytes[3]]), 7 | 0xc000);
        round_trip(frame);
    }

    #[test]
    fn block_ack_round_trip() {
        round_trip(ControlFrame::BlockAck {
            duration_us: 0,
            ra: addr(1),
            ta: addr(2),
            control: 0x0005,
            start_seq: 100 << 4,
            bitmap: 0xffff_0000_ff00_00ff,
        });
        round_trip(ControlFrame::BlockAckReq {
            duration_us: 32,
            ra: addr(1),
            ta: addr(2),
            control: 0x0004,
            start_seq: 100 << 4,
        });
    }

    #[test]
    fn cf_end_round_trip() {
        round_trip(ControlFrame::CfEnd {
            ra: MacAddr::BROADCAST,
            bssid: addr(1),
        });
    }

    #[test]
    fn truncated_ack_rejected() {
        let ack = ControlFrame::Ack { ra: addr(1) };
        let bytes = ack.encode();
        let fc = FrameControl::parse(&bytes).unwrap();
        assert!(ControlFrame::parse(fc, &bytes[..8]).is_err());
    }

    #[test]
    fn ra_and_ta_accessors() {
        let rts = ControlFrame::Rts {
            duration_us: 0,
            ra: addr(1),
            ta: addr(2),
        };
        assert_eq!(rts.ra(), addr(1));
        assert_eq!(rts.ta(), Some(addr(2)));
        let ack = ControlFrame::Ack { ra: addr(3) };
        assert_eq!(ack.ra(), addr(3));
        assert_eq!(ack.ta(), None);
    }
}
