//! `exp_run SCENARIO.json [flags]` — the single experiment entry point.
//!
//! Reads a scenario file, applies its run defaults, lets the usual
//! harness flags (`--trials/--workers/--seed/--quick/--faults/…`)
//! override them, and dispatches to the runner the spec names.
//!
//! Extra modes:
//! * `exp_run --list` prints every registered runner.
//! * `exp_run --fmt FILE...` rewrites each file in canonical form
//!   (the form the golden tests pin byte-exactly).
//! * `exp_run --check FILE...` validates each file and verifies it is
//!   already canonical, printing one line per file; non-canonical files
//!   name the fields whose order drifted.

use polite_wifi_harness::RunArgs;
use polite_wifi_scenario::{run_spec, runner_names, ScenarioSpec};
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("exp_run: {msg}");
    exit(2);
}

fn load(path: &str) -> ScenarioSpec {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read `{path}`: {e}")),
    };
    match ScenarioSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => fail(&format!("`{path}`: {e}")),
    }
}

/// The object keys of a JSON document in the order they appear in the
/// text. A tiny string-aware scanner, not a parse — the point is to
/// compare the committed byte order against the canonical re-emission,
/// which a parser would collapse.
fn key_sequence(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            if bytes[j] == b'\\' {
                j += 1;
            }
            j += 1;
        }
        let end = j.min(bytes.len());
        let mut k = end + 1;
        while k < bytes.len() && bytes[k].is_ascii_whitespace() {
            k += 1;
        }
        if k < bytes.len() && bytes[k] == b':' {
            keys.push(String::from_utf8_lossy(&bytes[start..end]).into_owned());
        }
        i = end + 1;
    }
    keys
}

/// Why `committed` differs from its canonical re-emission, in terms a
/// scenario author can act on: which fields moved, which appear or
/// vanish under canonicalisation, or — when the key order already
/// matches — that only whitespace drifted.
fn describe_drift(committed: &str, canonical: &str) -> String {
    let got = key_sequence(committed);
    let want = key_sequence(canonical);
    if got == want {
        return "formatting differs (whitespace or indentation)".to_string();
    }
    let mut sorted_got = got.clone();
    let mut sorted_want = want.clone();
    sorted_got.sort();
    sorted_want.sort();
    if sorted_got == sorted_want {
        let mut moved: Vec<&str> = Vec::new();
        for (g, w) in got.iter().zip(want.iter()) {
            if g != w {
                for key in [g.as_str(), w.as_str()] {
                    if !moved.contains(&key) {
                        moved.push(key);
                    }
                }
            }
        }
        return format!("fields re-ordered: {}", moved.join(", "));
    }
    // Canonicalisation adds or drops keys (defaults made explicit);
    // name them rather than misreporting an order problem.
    let mut changed: Vec<&str> = Vec::new();
    for key in want.iter().filter(|k| !got.contains(k)) {
        if !changed.contains(&key.as_str()) {
            changed.push(key);
        }
    }
    for key in got.iter().filter(|k| !want.contains(k)) {
        if !changed.contains(&key.as_str()) {
            changed.push(key);
        }
    }
    format!(
        "fields added or removed by canonicalisation: {}",
        changed.join(", ")
    )
}

/// Run `--fmt`/`--check` over every path; returns the failure count.
fn fmt_or_check(mode: &str, paths: &[String]) -> std::io::Result<usize> {
    let mut failures = 0usize;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("exp_run: cannot read `{path}`: {e}");
                failures += 1;
                continue;
            }
        };
        let spec = match ScenarioSpec::parse(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("exp_run: `{path}`: {e}");
                failures += 1;
                continue;
            }
        };
        let canonical = spec.to_canonical_json();
        if mode == "--fmt" {
            if text == canonical {
                println!("{path}: already canonical");
            } else {
                std::fs::write(path, &canonical)?;
                println!("canonicalised {path}");
            }
        } else if text == canonical {
            println!(
                "{path}: ok (runner `{}`, slug `{}`)",
                spec.runner, spec.slug
            );
        } else {
            println!(
                "{path}: not canonical — {} (fix with `exp_run --fmt {path}`)",
                describe_drift(&text, &canonical)
            );
            failures += 1;
        }
    }
    Ok(failures)
}

fn main() -> std::io::Result<()> {
    let mut argv = std::env::args().skip(1).peekable();
    let first = match argv.peek().map(String::as_str) {
        None | Some("--help") => {
            println!(
                "usage: exp_run SCENARIO.json [harness flags]\n       \
                 exp_run --list | --fmt FILE... | --check FILE..."
            );
            return Ok(());
        }
        Some("--list") => {
            for name in runner_names() {
                println!("{name}");
            }
            return Ok(());
        }
        Some(mode @ ("--fmt" | "--check")) => {
            let mode = mode.to_string();
            argv.next();
            let paths: Vec<String> = argv.collect();
            if paths.is_empty() {
                fail(&format!("{mode} needs at least one scenario path"));
            }
            let failures = fmt_or_check(&mode, &paths)?;
            if failures > 0 {
                exit(2);
            }
            return Ok(());
        }
        Some(_) => argv.next().unwrap(),
    };
    let spec = load(&first);
    let args = match RunArgs::parse(argv, spec.run_args()) {
        Ok(args) => args,
        Err(e) => fail(&e),
    };
    let status = run_spec(&spec, args)?;
    if status != 0 {
        exit(status);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_sequence_is_string_aware_and_ordered() {
        let text = r#"{"b": 1, "a": {"x": ":not-a-key", "y": [2, 3]}, "c": "a"}"#;
        assert_eq!(key_sequence(text), ["b", "a", "x", "y", "c"]);
    }

    #[test]
    fn drift_names_reordered_fields() {
        let committed = r#"{"trials": 3, "seed": 2, "workers": 1}"#;
        let canonical = r#"{"seed": 2, "trials": 3, "workers": 1}"#;
        assert_eq!(
            describe_drift(committed, canonical),
            "fields re-ordered: trials, seed"
        );
    }

    #[test]
    fn drift_names_keys_added_by_canonicalisation() {
        let committed = r#"{"seed": 2}"#;
        let canonical = r#"{"seed": 2, "quick": false}"#;
        assert_eq!(
            describe_drift(committed, canonical),
            "fields added or removed by canonicalisation: quick"
        );
    }

    #[test]
    fn drift_falls_back_to_whitespace_wording() {
        let committed = "{\"seed\":2}";
        let canonical = "{\n  \"seed\": 2\n}";
        assert_eq!(
            describe_drift(committed, canonical),
            "formatting differs (whitespace or indentation)"
        );
    }
}
