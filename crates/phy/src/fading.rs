//! Small-scale fading: Rayleigh and Rician channel gains.

use crate::complex::Complex;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Draws a standard normal via Box–Muller (keeps us off `rand_distr`).
pub fn randn(rng: &mut ChaCha8Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// A circularly-symmetric complex Gaussian with per-component std `sigma`.
pub fn cn(rng: &mut ChaCha8Rng, sigma: f64) -> Complex {
    Complex::new(randn(rng) * sigma, randn(rng) * sigma)
}

/// Small-scale fading statistics for a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fading {
    /// No fading: the gain is always 1.
    None,
    /// Rayleigh: no line-of-sight; gain is CN(0, 1).
    Rayleigh,
    /// Rician with factor `k` (linear): a LOS component plus scatter.
    /// `k → ∞` approaches no fading; `k = 0` is Rayleigh.
    Rician {
        /// Ratio of LOS power to scattered power (linear, not dB).
        k: f64,
    },
}

impl Fading {
    /// Draws one unit-mean-power channel gain.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> Complex {
        match *self {
            Fading::None => Complex::ONE,
            Fading::Rayleigh => cn(rng, (0.5f64).sqrt()),
            Fading::Rician { k } => {
                let los = Complex::from_polar((k / (k + 1.0)).sqrt(), 0.0);
                let scatter = cn(rng, (0.5 / (k + 1.0)).sqrt());
                los + scatter
            }
        }
    }

    /// Applies one fading draw to a mean received power in dBm.
    pub fn faded_power_dbm(&self, mean_dbm: f64, rng: &mut ChaCha8Rng) -> f64 {
        let g = self.sample(rng).norm_sq().max(1e-12);
        mean_dbm + 10.0 * g.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn randn_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn rayleigh_unit_mean_power() {
        let mut r = rng();
        let n = 50_000;
        let p: f64 = (0..n)
            .map(|_| Fading::Rayleigh.sample(&mut r).norm_sq())
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.05, "mean power {p}");
    }

    #[test]
    fn rician_unit_mean_power_and_low_variance_at_high_k() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| Fading::Rician { k: 10.0 }.sample(&mut r).norm_sq())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Rayleigh power variance is 1; K=10 Rician should be far tighter.
        assert!(var < 0.3, "var {var}");
    }

    #[test]
    fn none_is_deterministic_unity() {
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(Fading::None.sample(&mut r), Complex::ONE);
        }
        assert_eq!(Fading::None.faded_power_dbm(-50.0, &mut r), -50.0);
    }

    #[test]
    fn seeded_rng_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                Fading::Rayleigh.sample(&mut a),
                Fading::Rayleigh.sample(&mut b)
            );
        }
    }
}
