//! Breathing-rate estimation from ACK CSI — one of the paper's explicit
//! open questions ("can an attacker estimate vital signs such as heart
//! rate and breathing rate of people from the CSI of their WiFi
//! devices?"), answered here for breathing on the synthetic channel.
//!
//! Breathing moves the chest a few millimetres at 0.1–0.5 Hz, which
//! shows up as a small periodic component in subcarrier amplitude. The
//! estimator detrends the series and scans that band with a Goertzel
//! single-bin DFT, picking the dominant spectral peak.

use serde::{Deserialize, Serialize};

/// Result of a breathing-rate scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreathingEstimate {
    /// Estimated rate in breaths per minute.
    pub bpm: f64,
    /// Peak-to-mean spectral power ratio in the scanned band; values
    /// near 1 mean "no periodicity" (use [`BreathingEstimate::is_confident`]).
    pub confidence: f64,
}

impl BreathingEstimate {
    /// Whether the spectral peak is pronounced enough to trust.
    ///
    /// On pure noise the maximum of ~45 exponentially-distributed
    /// Goertzel bins sits near 4–5× the mean, so the threshold lives
    /// comfortably above that.
    pub fn is_confident(&self) -> bool {
        self.confidence >= 8.0
    }
}

/// Goertzel power of `series` at `freq_hz` (single DFT bin).
pub fn goertzel_power(series: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    if series.len() < 2 || sample_rate_hz <= 0.0 {
        return 0.0;
    }
    let omega = 2.0 * std::f64::consts::PI * freq_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &x in series {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    (s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2) / series.len() as f64
}

/// Removes slow trends (and the DC term) with a long moving average, so
/// the breathing band stands alone.
fn detrend(series: &[f64], sample_rate_hz: f64) -> Vec<f64> {
    // ~4 s half-window: removes drift below ≈0.125 Hz poorly but the
    // band scan starts at 0.13 Hz, and DC is fully gone.
    let half = ((sample_rate_hz * 4.0) as usize).max(1);
    let trend = crate::filter::moving_average(series, half);
    series.iter().zip(&trend).map(|(x, t)| x - t).collect()
}

/// The motion envelope: smoothed magnitude of the first difference.
/// Breathing that modulates the channel *incoherently* (scattered-power
/// variance tracking chest motion) is invisible in the raw amplitude
/// spectrum but periodic in this envelope.
pub fn motion_envelope(series: &[f64], sample_rate_hz: f64) -> Vec<f64> {
    if series.len() < 2 {
        return Vec::new();
    }
    let diffs: Vec<f64> = series.windows(2).map(|w| (w[1] - w[0]).abs()).collect();
    // ~0.25 s smoothing: well under a breathing half-period.
    let half = ((sample_rate_hz * 0.25) as usize).max(1);
    crate::filter::moving_average(&diffs, half)
}

/// Goertzel scan of one conditioned series over 8–30 breaths/min.
fn scan_band(series: &[f64], sample_rate_hz: f64) -> Option<BreathingEstimate> {
    let mut best_bpm = 0.0;
    let mut best_power = 0.0;
    let mut total_power = 0.0;
    let mut bins = 0usize;
    let mut bpm = 8.0;
    while bpm <= 30.0 {
        let p = goertzel_power(series, sample_rate_hz, bpm / 60.0);
        total_power += p;
        bins += 1;
        if p > best_power {
            best_power = p;
            best_bpm = bpm;
        }
        bpm += 0.5;
    }
    if bins == 0 || total_power <= 0.0 {
        return None;
    }
    let mean_power = total_power / bins as f64;
    Some(BreathingEstimate {
        bpm: best_bpm,
        confidence: best_power / mean_power.max(1e-30),
    })
}

/// Scans 8–30 breaths/min and returns the dominant rate.
///
/// Two views of the series are scanned and the more confident peak wins:
/// the detrended amplitude itself (coherent chest-displacement paths)
/// and its [`motion_envelope`] (incoherent variance modulation).
pub fn estimate_breathing_rate(series: &[f64], sample_rate_hz: f64) -> Option<BreathingEstimate> {
    // Need at least ~3 breathing periods to resolve anything.
    if series.len() as f64 / sample_rate_hz < 20.0 {
        return None;
    }
    let coherent = scan_band(&detrend(series, sample_rate_hz), sample_rate_hz);
    let envelope = motion_envelope(series, sample_rate_hz);
    let incoherent = scan_band(&detrend(&envelope, sample_rate_hz), sample_rate_hz);
    match (coherent, incoherent) {
        (Some(a), Some(b)) => Some(if a.confidence >= b.confidence { a } else { b }),
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breathing_series(bpm: f64, sample_rate_hz: f64, secs: f64, noise: f64) -> Vec<f64> {
        let n = (sample_rate_hz * secs) as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / sample_rate_hz;
                let pseudo = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5;
                1.0 + 0.05 * (2.0 * std::f64::consts::PI * bpm / 60.0 * t).sin() + noise * pseudo
            })
            .collect()
    }

    #[test]
    fn recovers_known_rate() {
        for true_bpm in [10.0, 15.0, 22.0] {
            let s = breathing_series(true_bpm, 150.0, 60.0, 0.01);
            let est = estimate_breathing_rate(&s, 150.0).unwrap();
            assert!(
                (est.bpm - true_bpm).abs() <= 0.5,
                "true {true_bpm}, got {}",
                est.bpm
            );
            assert!(est.is_confident(), "confidence {}", est.confidence);
        }
    }

    #[test]
    fn noise_only_is_unconfident() {
        // Proper white noise (the hash-based pseudo-noise used elsewhere
        // has spectral structure that a sensitive estimator picks up).
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let s: Vec<f64> = (0..9000)
            .map(|_| 1.0 + 0.05 * (rng.gen::<f64>() - 0.5))
            .collect();
        let est = estimate_breathing_rate(&s, 150.0).unwrap();
        assert!(
            !est.is_confident(),
            "confidence {} on noise",
            est.confidence
        );
    }

    /// Heteroscedastic breathing: noise whose *power* tracks the chest
    /// motion (how the tapped-delay CSI model responds to breathing).
    fn incoherent_breathing_series(bpm: f64, sample_rate_hz: f64, secs: f64) -> Vec<f64> {
        let n = (sample_rate_hz * secs) as usize;
        (0..n)
            .map(|i| {
                let t = i as f64 / sample_rate_hz;
                let pseudo = ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5;
                let sigma = 0.02 + 0.015 * (2.0 * std::f64::consts::PI * bpm / 60.0 * t).sin();
                1.0 + sigma * pseudo
            })
            .collect()
    }

    #[test]
    fn recovers_rate_from_incoherent_modulation() {
        for true_bpm in [12.0, 18.0] {
            let s = incoherent_breathing_series(true_bpm, 150.0, 60.0);
            let est = estimate_breathing_rate(&s, 150.0).unwrap();
            assert!(
                (est.bpm - true_bpm).abs() <= 1.0,
                "true {true_bpm}, got {} (confidence {})",
                est.bpm,
                est.confidence
            );
        }
    }

    #[test]
    fn envelope_of_constant_is_flat() {
        let env = motion_envelope(&[5.0; 100], 150.0);
        assert!(env.iter().all(|&e| e == 0.0));
        assert!(motion_envelope(&[1.0], 150.0).is_empty());
    }

    #[test]
    fn short_series_rejected() {
        let s = breathing_series(15.0, 150.0, 10.0, 0.0);
        assert!(estimate_breathing_rate(&s, 150.0).is_none());
    }

    #[test]
    fn goertzel_matches_sinusoid() {
        let sr = 100.0;
        let f = 2.0;
        let s: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / sr).sin())
            .collect();
        let on_peak = goertzel_power(&s, sr, f);
        let off_peak = goertzel_power(&s, sr, f * 2.0);
        assert!(on_peak > 50.0 * off_peak, "{on_peak} vs {off_peak}");
    }

    #[test]
    fn goertzel_degenerate_inputs() {
        assert_eq!(goertzel_power(&[], 100.0, 1.0), 0.0);
        assert_eq!(goertzel_power(&[1.0], 100.0, 1.0), 0.0);
        assert_eq!(goertzel_power(&[1.0, 2.0], 0.0, 1.0), 0.0);
    }
}
