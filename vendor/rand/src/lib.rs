//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the *exact* surface it consumes:
//! [`RngCore`], [`SeedableRng`] and the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`. The value distributions follow the
//! upstream conventions (f64 in `[0, 1)` from 53 random bits, Lemire-style
//! range reduction for integers), but no bit-for-bit compatibility with
//! upstream `rand` output streams is promised — the workspace only relies
//! on *internal* determinism (same seed ⇒ same stream).

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

use std::ops::Range;

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A PRNG that can be built from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for every RNG in this workspace).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, stretching it over the full seed via
    /// SplitMix64 (the same construction upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len().min(8);
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly over their whole domain
/// (`rand`'s `Standard` distribution, reduced to a plain trait).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64);

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1), upstream's convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift range reduction (negligible bias for the
                // spans this workspace draws).
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i64) + hi as i64) as $t
            }
        }
    )*};
}

impl_sample_range_sint!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f32 = Standard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing extension trait: generic sampling helpers.
pub trait Rng: RngCore {
    /// Samples a value uniformly over its whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` namespace (empty: this workspace only uses ChaCha8).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = Counter(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Counter(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10..14u64);
            assert!((10..14).contains(&v));
            let f = r.gen_range(-0.2..0.25f64);
            assert!((-0.2..0.25).contains(&f));
            let s = r.gen_range(20..50usize);
            assert!((20..50).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
