//! The wardriving survey pipeline (paper §3, Table 2).
//!
//! The paper's rig was a three-thread Scapy program on a laptop with an
//! RTL8812AU dongle: thread 1 discovered nearby devices by sniffing,
//! thread 2 injected fake frames at discovered targets, thread 3 verified
//! the ACKs. This module reproduces that *logic* — the same role
//! inference and temporal fake→ACK pairing, with no ground-truth
//! peeking — but organises the work for determinism and scale: the city
//! is partitioned into per-channel *neighbourhood segments* (the set of
//! devices within radio range of the car at one stretch of the drive),
//! each segment scan is a self-contained function of its own derived
//! seed, and the segments are fanned across the experiment harness's
//! worker pool ([`WardriveScanner::run_sharded`]).
//!
//! Every segment derives its seed as `seed ^ segment_index` and results
//! merge in segment order, so the report is byte-identical whether one
//! worker scanned the whole city or eight split it.

use crate::retry::RetryPolicy;
use crate::verifier::AckVerifier;
use polite_wifi_devices::{CityPopulation, DeviceSpec};
use polite_wifi_frame::{builder, Frame, MacAddr};
use polite_wifi_harness::{derive_trial_seed, Runner};
use polite_wifi_mac::{Role, StationConfig};
use polite_wifi_obs::{names, Obs};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{
    FaultProfile, MediumConfig, NodeId, PropagationMode, SchedulerKind, SimConfig, Simulator,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A discovery: a transmitter address, the role the sniffer *infers*
/// from the frame kind that revealed it (beacons/probe responses mean AP,
/// everything else means client), and whether a beacon advertised 802.11w
/// management-frame protection — the same inference a real wardriving
/// rig makes, with no ground-truth peeking.
type Discovery = (MacAddr, Role, bool);

/// Scanner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WardriveScanner {
    /// Simulation seed.
    pub seed: u64,
    /// Devices per neighbourhood segment (how many are in range at once).
    pub segment_size: usize,
    /// Simulated dwell time per segment, µs.
    pub dwell_us: u64,
    /// Fake frames injected per discovered target.
    pub fakes_per_target: u32,
    /// Channel/device fault profile each segment runs under.
    pub faults: FaultProfile,
    /// Retry/backoff/quarantine policy for pending targets.
    pub retry: RetryPolicy,
}

impl Default for WardriveScanner {
    fn default() -> Self {
        WardriveScanner {
            seed: 20,
            segment_size: 48,
            dwell_us: 2_500_000,
            fakes_per_target: 3,
            faults: FaultProfile::Clean,
            retry: RetryPolicy::default(),
        }
    }
}

/// The survey's outcome — everything Table 2 reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Devices whose transmissions the sniffer heard.
    pub discovered: usize,
    /// Devices that verifiably ACKed a fake frame.
    pub verified: usize,
    /// Verified client devices per vendor, descending.
    pub client_counts: Vec<(String, u32)>,
    /// Verified APs per vendor, descending.
    pub ap_counts: Vec<(String, u32)>,
    /// Verified client total.
    pub total_clients: u32,
    /// Verified AP total.
    pub total_aps: u32,
    /// Distinct vendors among verified clients.
    pub client_vendor_count: usize,
    /// Distinct vendors among verified APs.
    pub ap_vendor_count: usize,
    /// Distinct vendors overall.
    pub distinct_vendor_count: usize,
    /// Targets quarantined after exhausting the retry budget or the
    /// per-target verify timeout (always 0 on a clean channel).
    pub quarantined: usize,
    /// Verified APs whose beacons advertised 802.11w (PMF). The paper's
    /// footnote 2: they ACK fakes and answer forged RTS all the same.
    pub pmf_aps: u32,
    /// Simulated survey time, µs.
    pub survey_time_us: u64,
}

/// Thread 1 of the paper's pipeline, as inline state: discover devices
/// by sniffing. Emits each transmitter address the first time it is
/// heard, with the role inferred from the revealing frame — beacons and
/// probe responses come from APs; everything else is treated as a
/// client.
struct DiscoveryState {
    seen: HashSet<MacAddr>,
}

impl DiscoveryState {
    fn new() -> DiscoveryState {
        let mut seen = HashSet::new();
        seen.insert(MacAddr::FAKE); // never target ourselves
        DiscoveryState { seen }
    }

    fn observe(&mut self, frame: &Frame, out: &mut Vec<Discovery>) {
        use polite_wifi_frame::ManagementBody;
        let Some(ta) = frame.transmitter() else {
            return;
        };
        let (role, pmf) = match frame {
            Frame::Mgmt(m) => match &m.body {
                ManagementBody::Beacon { elements, .. } => {
                    use polite_wifi_frame::ie::{element_id, InformationElement};
                    let pmf = InformationElement::find(elements, element_id::RSN)
                        .is_some_and(|rsn| rsn.rsn_has_pmf());
                    (Role::AccessPoint, pmf)
                }
                ManagementBody::ProbeResponse { .. } => (Role::AccessPoint, false),
                _ => (Role::Client, false),
            },
            _ => (Role::Client, false),
        };
        if ta.is_unicast() && self.seen.insert(ta) {
            out.push((ta, role, pmf));
        } else if pmf && ta.is_unicast() {
            // PMF flag may arrive on a later beacon than the discovery;
            // re-announce so it sticks.
            out.push((ta, role, true));
        }
    }
}

/// Thread 3 of the paper's pipeline, as inline state: verify that
/// targets answered, with the same temporal fake→ACK pairing as
/// [`AckVerifier`], streaming.
struct VerifierState {
    verifier: AckVerifier,
    reported: HashSet<MacAddr>,
    /// Pairing state survives capture-slice boundaries within a segment.
    pending: Option<(MacAddr, u64)>,
}

impl VerifierState {
    fn new() -> VerifierState {
        VerifierState {
            verifier: AckVerifier::new(MacAddr::FAKE),
            reported: HashSet::new(),
            pending: None,
        }
    }

    fn observe(&mut self, ts: u64, frame: &Frame, out: &mut Vec<MacAddr>) {
        use polite_wifi_frame::ControlFrame;
        match frame {
            Frame::Ctrl(ControlFrame::Ack { ra }) | Frame::Ctrl(ControlFrame::Cts { ra, .. })
                if *ra == self.verifier.attacker =>
            {
                if let Some((victim, fake_ts)) = self.pending.take() {
                    if ts.saturating_sub(fake_ts) <= self.verifier.window_us
                        && self.reported.insert(victim)
                    {
                        out.push(victim);
                    }
                }
            }
            other => {
                if other.transmitter() == Some(self.verifier.attacker) {
                    if let Some(victim) = other.receiver() {
                        self.pending = Some((victim, ts));
                    }
                }
            }
        }
    }
}

/// Thread 2's per-target bookkeeping: how many times a pending target
/// has been injected at, when it may be injected at again (backoff),
/// and when the clock on its verify timeout started.
struct TargetRetry {
    attempts: u32,
    next_due_us: u64,
    first_attempt_us: Option<u64>,
}

/// What one self-contained segment scan produced, in emission order, so
/// segment outcomes merge identically however they were scheduled.
struct SegmentOutcome {
    discovered: Vec<Discovery>,
    verified: Vec<MacAddr>,
    quarantined: Vec<MacAddr>,
    survey_time_us: u64,
    obs: Obs,
}

impl WardriveScanner {
    /// Runs the survey over a population on one worker. Returns the
    /// Table 2 aggregate. Equivalent to `run_sharded(population, 1)` —
    /// and, by construction, to any other worker count.
    pub fn run(&self, population: &CityPopulation) -> ScanReport {
        self.run_sharded(population, 1)
    }

    /// Runs the survey with the city's segments fanned across a worker
    /// pool. Each segment scan is a pure function of the scanner config
    /// and its derived seed (`seed ^ segment_index`), and outcomes merge
    /// in segment order — so every worker count produces byte-identical
    /// reports, and the wall-clock speedup is the only difference.
    pub fn run_sharded(&self, population: &CityPopulation, workers: usize) -> ScanReport {
        self.run_observed(population, workers, &mut Obs::new())
    }

    /// [`run_sharded`](Self::run_sharded), additionally folding every
    /// segment's observability snapshot (fault/retry counters and
    /// histograms) into `obs` in segment order — so an experiment's
    /// envelope reports them byte-identically at any worker count.
    pub fn run_observed(
        &self,
        population: &CityPopulation,
        workers: usize,
        obs: &mut Obs,
    ) -> ScanReport {
        let segments = self.plan_segments(population);
        let runner = Runner::new(workers);
        let outcomes = runner.run_indexed(segments.len(), |i| {
            self.scan_segment(&segments[i], derive_trial_seed(self.seed, i as u64))
        });

        // --- Merge in segment order (scheduling-independent). ---
        let mut discovered: HashMap<MacAddr, (Role, bool)> = HashMap::new();
        let mut verified: HashSet<MacAddr> = HashSet::new();
        let mut quarantined: HashSet<MacAddr> = HashSet::new();
        let mut survey_time_us = 0u64;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            for (mac, role, pmf) in outcome.discovered {
                let entry = discovered.entry(mac).or_insert((role, pmf));
                entry.1 |= pmf;
            }
            verified.extend(outcome.verified);
            quarantined.extend(outcome.quarantined);
            survey_time_us += outcome.survey_time_us;
            obs.absorb(&outcome.obs, i as u64);
        }

        self.aggregate(
            population,
            &discovered,
            &verified,
            quarantined.len(),
            survey_time_us,
        )
    }

    /// Plans the drive: radios only hear their tuned channel, so the
    /// drive visits one channel at a time — group the city by (band,
    /// channel) and chunk each group into neighbourhood segments. The
    /// dongle retunes at each segment boundary, like a real wardriving
    /// rig's hop plan.
    fn plan_segments<'p>(&self, population: &'p CityPopulation) -> Vec<Vec<&'p DeviceSpec>> {
        plan_channel_segments(population, self.segment_size)
    }

    /// Scans one neighbourhood (all devices share one band/channel; the
    /// attacker's dongle is tuned to it). Self-contained: everything is
    /// derived from the scanner config and `seed`, so segments can run
    /// on any worker in any order.
    fn scan_segment(&self, segment: &[&DeviceSpec], seed: u64) -> SegmentOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rng = &mut rng;
        let mut sim = Simulator::new(SimConfig::default(), rng.gen());
        let mut attacker_cfg = StationConfig::client(MacAddr::FAKE);
        if let Some(first) = segment.first() {
            attacker_cfg.band = first.band;
            attacker_cfg.channel = first.channel;
        }
        let attacker = sim.add_node(attacker_cfg, (0.0, 0.0));
        sim.set_monitor(attacker, true);
        sim.set_retries(attacker, false);

        let mut members: HashSet<MacAddr> = HashSet::new();
        for spec in segment {
            let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let radius: f64 = rng.gen_range(3.0..25.0);
            let pos = (radius * angle.cos(), radius * angle.sin());
            let mut cfg = StationConfig::client(spec.mac);
            cfg.role = spec.role;
            cfg.band = spec.band;
            cfg.channel = spec.channel;
            cfg.behavior = spec.behavior;
            cfg.ssid = spec.ssid.clone();
            cfg.beacon_interval_us = match spec.role {
                Role::AccessPoint => Some(102_400),
                Role::Client => None,
            };
            let id = sim.add_node(cfg, pos);
            members.insert(spec.mac);
            // Clients reveal themselves with periodic probe requests —
            // scheduled past the nominal dwell too, because the dwell is
            // extended for dozing stragglers and the devices keep living
            // their lives meanwhile.
            if spec.role == Role::Client {
                let mut t = rng.gen_range(0..500_000u64);
                let mut seq = 0u16;
                while t < 5 * self.dwell_us + 300_000 {
                    sim.inject(t, id, builder::probe_request(spec.mac, seq), BitRate::Mbps1);
                    seq = seq.wrapping_add(1);
                    t += rng.gen_range(400_000..700_000u64);
                }
            }
        }

        // The segment runs under the scanner's fault profile. Installed
        // after every node exists (stall schedules attach to the first
        // monitor-mode node — the attacker's dongle); the clean profile
        // is a no-op by construction.
        sim.install_faults(&self.faults.plan());

        // Drive the paper's pipeline in 250 ms slices. Thread 2's
        // behaviour: keep injecting at every discovered target until it
        // verifies (power-save targets doze and miss one-shot fakes),
        // backing off per [`RetryPolicy`] once a target has soaked up
        // its free retries, and quarantining it when the policy says the
        // channel has wasted enough injection budget on it. `pending`
        // iterates in MAC order (BTreeMap) so injection times never
        // depend on hash-map seeding.
        let mut discovery = DiscoveryState::new();
        let mut verification = VerifierState::new();
        let mut discovered: Vec<Discovery> = Vec::new();
        let mut verified: Vec<MacAddr> = Vec::new();
        let mut verified_set: HashSet<MacAddr> = HashSet::new();
        let mut quarantined: Vec<MacAddr> = Vec::new();
        let mut capture_offset = 0usize;
        let mut pending: BTreeMap<MacAddr, TargetRetry> = BTreeMap::new();
        let slice_us = 250_000u64;
        let mut now = 0u64;

        // Processes newly captured frames through both inline workers
        // and refreshes the pending-target set.
        let pump = |sim: &Simulator,
                    offset: &mut usize,
                    discovery: &mut DiscoveryState,
                    verification: &mut VerifierState,
                    discovered: &mut Vec<Discovery>,
                    verified: &mut Vec<MacAddr>,
                    verified_set: &mut HashSet<MacAddr>,
                    pending: &mut BTreeMap<MacAddr, TargetRetry>| {
            let frames = sim.node(attacker).capture.frames();
            let mut fresh: Vec<Discovery> = Vec::new();
            let mut fresh_verified: Vec<MacAddr> = Vec::new();
            for cf in &frames[*offset..] {
                discovery.observe(&cf.frame, &mut fresh);
                verification.observe(cf.ts_us, &cf.frame, &mut fresh_verified);
            }
            *offset = frames.len();
            for (mac, role, pmf) in fresh {
                if members.contains(&mac) && !verified_set.contains(&mac) {
                    pending.entry(mac).or_insert(TargetRetry {
                        attempts: 0,
                        next_due_us: 0,
                        first_attempt_us: None,
                    });
                }
                discovered.push((mac, role, pmf));
            }
            for mac in fresh_verified {
                verified_set.insert(mac);
                pending.remove(&mac);
                verified.push(mac);
            }
        };

        while now < self.dwell_us {
            now += slice_us;
            sim.run_until(now);
            pump(
                &sim,
                &mut capture_offset,
                &mut discovery,
                &mut verification,
                &mut discovered,
                &mut verified,
                &mut verified_set,
                &mut pending,
            );
            self.inject_round(
                &mut sim,
                attacker,
                &mut pending,
                &mut quarantined,
                now,
                seed,
            );
        }
        // Stragglers: power-save targets doze most of the time and only
        // hear fakes in their brief wake windows, and a device whose
        // every probe collided so far has not even been *heard* yet. The
        // paper's thread 2 keeps injecting while the car is in range —
        // extend the dwell (up to 4x) until every in-range device has
        // been discovered and either verified or quarantined. (Both sets
        // only ever contain segment members, so the comparison is exact.)
        let max_extension = now + 4 * self.dwell_us;
        while verified_set.len() + quarantined.len() < members.len() && now < max_extension {
            self.inject_round(
                &mut sim,
                attacker,
                &mut pending,
                &mut quarantined,
                now,
                seed,
            );
            now += slice_us;
            sim.run_until(now);
            pump(
                &sim,
                &mut capture_offset,
                &mut discovery,
                &mut verification,
                &mut discovered,
                &mut verified,
                &mut verified_set,
                &mut pending,
            );
        }

        // Let trailing injections and their ACKs finish, then flush.
        let tail = now + 300_000;
        sim.run_until(tail);
        pump(
            &sim,
            &mut capture_offset,
            &mut discovery,
            &mut verification,
            &mut discovered,
            &mut verified,
            &mut verified_set,
            &mut pending,
        );
        // A quarantined target that verified anyway (a trailing ACK beat
        // the verdict) counts as verified, not quarantined.
        quarantined.retain(|mac| !verified_set.contains(mac));

        SegmentOutcome {
            discovered,
            verified,
            quarantined,
            survey_time_us: tail,
            obs: sim.take_obs(),
        }
    }

    /// Injects one slice's worth of fakes at every pending target whose
    /// backoff has elapsed, spread across the upcoming slice so the
    /// inter-fake gap stays under a power-save victim's ~100 ms wake
    /// window — and retires targets the retry policy gives up on.
    fn inject_round(
        &self,
        sim: &mut Simulator,
        attacker: NodeId,
        pending: &mut BTreeMap<MacAddr, TargetRetry>,
        quarantined: &mut Vec<MacAddr>,
        slice_start_us: u64,
        seed: u64,
    ) {
        let hop = 250_000 / self.fakes_per_target.max(1) as u64;
        let mut expired: Vec<MacAddr> = Vec::new();
        let mut i = 0u64;
        for (mac, state) in pending.iter_mut() {
            let first = state.first_attempt_us.unwrap_or(slice_start_us);
            if self
                .retry
                .should_quarantine(state.attempts, first, slice_start_us)
            {
                expired.push(*mac);
                continue;
            }
            if slice_start_us < state.next_due_us {
                continue; // still backing off
            }
            for k in 0..self.fakes_per_target {
                sim.inject(
                    slice_start_us + 2_000 + i * 1_500 + k as u64 * hop,
                    attacker,
                    builder::fake_null_frame(*mac, MacAddr::FAKE),
                    BitRate::Mbps1,
                );
            }
            i += 1;
            state.attempts += 1;
            state.first_attempt_us.get_or_insert(slice_start_us);
            if state.attempts > 1 {
                sim.obs_mut().incr(names::RETRY_ATTEMPTS);
            }
            let delay = self.retry.delay_us(state.attempts, seed ^ mac.to_u64());
            if delay > 0 {
                sim.obs_mut().observe(names::RETRY_BACKOFF_US, delay);
            }
            state.next_due_us = slice_start_us + delay;
        }
        for mac in expired {
            pending.remove(&mac);
            quarantined.push(mac);
            sim.obs_mut().incr(names::RETRY_QUARANTINED);
            // Ring-buffer breadcrumb: when in the drive this target fell
            // out of the retry budget (trace_query's timeline view).
            sim.obs_mut().event(slice_start_us, 0, "retry.quarantine");
        }
    }

    fn aggregate(
        &self,
        population: &CityPopulation,
        discovered: &HashMap<MacAddr, (Role, bool)>,
        verified: &HashSet<MacAddr>,
        quarantined: usize,
        survey_time_us: u64,
    ) -> ScanReport {
        // Attribution works the way the paper's rig worked: vendor from
        // the OUI registry (so randomised MACs fall into "Unknown") and
        // role from how the device was discovered — no ground truth.
        let mut client_counts: HashMap<String, u32> = HashMap::new();
        let mut ap_counts: HashMap<String, u32> = HashMap::new();
        let mut pmf_aps = 0u32;
        for mac in verified {
            let vendor = population
                .registry
                .vendor_of(*mac)
                .unwrap_or("Unknown (randomised MAC)")
                .to_string();
            let (role, pmf) = discovered
                .get(mac)
                .copied()
                .unwrap_or((Role::Client, false));
            match role {
                Role::Client => *client_counts.entry(vendor).or_default() += 1,
                Role::AccessPoint => {
                    *ap_counts.entry(vendor).or_default() += 1;
                    pmf_aps += u32::from(pmf);
                }
            }
        }
        let sort = |m: HashMap<String, u32>| -> Vec<(String, u32)> {
            let mut v: Vec<(String, u32)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            v
        };
        let client_counts = sort(client_counts);
        let ap_counts = sort(ap_counts);
        let total_clients: u32 = client_counts.iter().map(|(_, c)| c).sum();
        let total_aps: u32 = ap_counts.iter().map(|(_, c)| c).sum();
        let distinct: HashSet<&str> = client_counts
            .iter()
            .chain(ap_counts.iter())
            .map(|(v, _)| v.as_str())
            .collect();

        ScanReport {
            discovered: discovered.len(),
            verified: verified.len(),
            quarantined,
            client_vendor_count: client_counts.len(),
            ap_vendor_count: ap_counts.len(),
            distinct_vendor_count: distinct.len(),
            client_counts,
            ap_counts,
            total_clients,
            total_aps,
            pmf_aps,
            survey_time_us,
        }
    }
}

/// Groups a population by (band, channel) and chunks each group into
/// neighbourhood segments of at most `segment_size` devices — the hop
/// plan both the Table 2 survey and the city-scale drive share.
fn plan_channel_segments(
    population: &CityPopulation,
    segment_size: usize,
) -> Vec<Vec<&DeviceSpec>> {
    let mut by_tune: Vec<&DeviceSpec> = population.devices.iter().collect();
    by_tune.sort_by_key(|d| {
        (
            matches!(d.band, polite_wifi_phy::band::Band::Ghz5),
            d.channel,
            d.mac,
        )
    });
    let mut out: Vec<Vec<&DeviceSpec>> = Vec::new();
    for d in by_tune {
        let fits = out.last().is_some_and(|seg: &Vec<&DeviceSpec>| {
            seg.len() < segment_size.max(1) && seg[0].band == d.band && seg[0].channel == d.channel
        });
        if fits {
            out.last_mut().expect("checked").push(d);
        } else {
            out.push(vec![d]);
        }
    }
    out
}

/// The city-scale wardrive (DESIGN.md §11): a synthetic population of up
/// to a million devices, driven through on the spatial-cell simulator
/// core.
///
/// Where [`WardriveScanner`] reproduces the paper's Table 2 census on its
/// exact 5,328-device population, this drive answers the scale question —
/// what the survey costs at city volume. Devices are scattered uniformly
/// over an `area_m`-sided square; the attacker's car starts at its centre
/// and drives at 13.9 m/s (~50 km/h), discovering whatever transmits
/// within the 150 m propagation cutoff, injecting up to
/// `max_attempts × fakes_per_target` fakes per discovered target, and
/// verifying the ACKs with the same temporal pairing as the census rig.
///
/// Every segment is a pure function of `seed ^ segment_index`, so
/// reports and envelopes are byte-identical at any worker count, and the
/// `propagation`/`scheduler` knobs let the determinism suite hold the
/// cell grid and calendar queue against their oracle counterparts on the
/// very same drive.
#[derive(Debug, Clone, Copy)]
pub struct CityWardrive {
    /// Simulation seed.
    pub seed: u64,
    /// Synthetic population size.
    pub devices: usize,
    /// Devices per neighbourhood segment.
    pub segment_size: usize,
    /// Simulated dwell time per segment, µs.
    pub dwell_us: u64,
    /// Side of the square each segment's devices scatter over, metres.
    pub area_m: f64,
    /// Fake frames injected per pending target per 250 ms slice.
    pub fakes_per_target: u32,
    /// Injection rounds before the rig gives up on a target.
    pub max_attempts: u32,
    /// Channel/device fault profile each segment runs under.
    pub faults: FaultProfile,
    /// Propagation backend — [`PropagationMode::CellGrid`] for the real
    /// drive, [`PropagationMode::OracleAllPairs`] when a test wants the
    /// brute-force oracle on the same keyed draws.
    pub propagation: PropagationMode,
    /// Scheduler backend — calendar queue by default.
    pub scheduler: SchedulerKind,
}

impl Default for CityWardrive {
    fn default() -> Self {
        CityWardrive {
            seed: 2026,
            devices: 100_000,
            segment_size: 2048,
            dwell_us: 1_000_000,
            area_m: 3_000.0,
            fakes_per_target: 3,
            max_attempts: 3,
            faults: FaultProfile::Clean,
            propagation: PropagationMode::CellGrid,
            scheduler: SchedulerKind::Calendar,
        }
    }
}

/// What the city drive measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityReport {
    /// Population size the drive covered.
    pub devices: usize,
    /// Neighbourhood segments the drive was partitioned into.
    pub segments: usize,
    /// Distinct devices the sniffer heard across all segments.
    pub discovered: usize,
    /// Devices that verifiably ACKed a fake frame.
    pub verified: usize,
    /// Scheduler events dispatched across all segments — the numerator
    /// of the events/s throughput figure.
    pub events_dispatched: u64,
    /// Occupied interference-grid cells summed over segments (0 under
    /// all-pairs propagation).
    pub occupied_cells: u64,
    /// Simulated survey time, µs, summed over segments.
    pub survey_time_us: u64,
}

/// One city segment's outcome, in emission order.
struct CitySegmentOutcome {
    discovered: usize,
    verified: usize,
    events_dispatched: u64,
    occupied_cells: u64,
    survey_time_us: u64,
    obs: Obs,
}

impl CityWardrive {
    /// The simulator configuration every city segment runs under: the
    /// 150 m urban propagation cutoff with the configured propagation
    /// and scheduler backends.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            medium: MediumConfig {
                max_range_m: 150.0,
                ..MediumConfig::default()
            },
            scheduler: self.scheduler,
            propagation: self.propagation,
        }
    }

    /// Runs the drive on one worker.
    pub fn run(&self) -> CityReport {
        self.run_sharded(1)
    }

    /// Runs the drive with segments fanned across a worker pool; the
    /// report is byte-identical at any worker count.
    pub fn run_sharded(&self, workers: usize) -> CityReport {
        self.run_observed(workers, &mut Obs::new())
    }

    /// [`run_sharded`](Self::run_sharded), folding every segment's
    /// observability snapshot into `obs` in segment order.
    pub fn run_observed(&self, workers: usize, obs: &mut Obs) -> CityReport {
        let population = CityPopulation::synthetic_city(self.devices, self.seed);
        let segments = plan_channel_segments(&population, self.segment_size);
        let runner = Runner::new(workers);
        let outcomes = runner.run_indexed(segments.len(), |i| {
            self.scan_segment(&segments[i], derive_trial_seed(self.seed, i as u64))
        });

        let mut report = CityReport {
            devices: self.devices,
            segments: segments.len(),
            discovered: 0,
            verified: 0,
            events_dispatched: 0,
            occupied_cells: 0,
            survey_time_us: 0,
        };
        for (i, outcome) in outcomes.into_iter().enumerate() {
            report.discovered += outcome.discovered;
            report.verified += outcome.verified;
            report.events_dispatched += outcome.events_dispatched;
            report.occupied_cells += outcome.occupied_cells;
            report.survey_time_us += outcome.survey_time_us;
            obs.absorb(&outcome.obs, i as u64);
        }
        report
    }

    /// Scans one neighbourhood segment: all devices share one
    /// band/channel, scattered over the full city square; the attacker
    /// drives through the middle. Self-contained — everything derives
    /// from the config and `seed`.
    fn scan_segment(&self, segment: &[&DeviceSpec], seed: u64) -> CitySegmentOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rng = &mut rng;
        let mut sim = Simulator::new(self.sim_config(), rng.gen());
        let mut attacker_cfg = StationConfig::client(MacAddr::FAKE);
        if let Some(first) = segment.first() {
            attacker_cfg.band = first.band;
            attacker_cfg.channel = first.channel;
        }
        let attacker = sim.add_node(attacker_cfg, (0.0, 0.0));
        sim.set_monitor(attacker, true);
        sim.set_retries(attacker, false);
        sim.set_velocity(attacker, (13.9, 0.0)); // ~50 km/h, eastbound

        let half = self.area_m / 2.0;
        let mut members: HashSet<MacAddr> = HashSet::new();
        for spec in segment {
            let pos = (rng.gen_range(-half..half), rng.gen_range(-half..half));
            let mut cfg = StationConfig::client(spec.mac);
            cfg.role = spec.role;
            cfg.band = spec.band;
            cfg.channel = spec.channel;
            cfg.behavior = spec.behavior;
            cfg.ssid = spec.ssid.clone();
            cfg.beacon_interval_us = match spec.role {
                Role::AccessPoint => Some(102_400),
                Role::Client => None,
            };
            let id = sim.add_node(cfg, pos);
            members.insert(spec.mac);
            if spec.role == Role::Client {
                let mut t = rng.gen_range(0..500_000u64);
                let mut seq = 0u16;
                while t < self.dwell_us + 300_000 {
                    sim.inject(t, id, builder::probe_request(spec.mac, seq), BitRate::Mbps1);
                    seq = seq.wrapping_add(1);
                    t += rng.gen_range(400_000..700_000u64);
                }
            }
        }
        sim.install_faults(&self.faults.plan());

        let mut discovery = DiscoveryState::new();
        let mut verification = VerifierState::new();
        let mut discovered: HashSet<MacAddr> = HashSet::new();
        let mut verified: HashSet<MacAddr> = HashSet::new();
        // MAC-ordered so injection times never depend on hash seeding.
        let mut pending: BTreeMap<MacAddr, u32> = BTreeMap::new();
        let mut capture_offset = 0usize;
        let slice_us = 250_000u64;
        let hop = slice_us / self.fakes_per_target.max(1) as u64;
        let mut now = 0u64;
        let mut pump = |sim: &Simulator,
                        offset: &mut usize,
                        discovered: &mut HashSet<MacAddr>,
                        verified: &mut HashSet<MacAddr>,
                        pending: &mut BTreeMap<MacAddr, u32>| {
            let frames = sim.node(attacker).capture.frames();
            let mut fresh: Vec<Discovery> = Vec::new();
            let mut fresh_verified: Vec<MacAddr> = Vec::new();
            for cf in &frames[*offset..] {
                discovery.observe(&cf.frame, &mut fresh);
                verification.observe(cf.ts_us, &cf.frame, &mut fresh_verified);
            }
            *offset = frames.len();
            for (mac, _, _) in fresh {
                if members.contains(&mac) && discovered.insert(mac) && !verified.contains(&mac) {
                    pending.insert(mac, 0);
                }
            }
            for mac in fresh_verified {
                verified.insert(mac);
                pending.remove(&mac);
            }
        };

        while now < self.dwell_us {
            now += slice_us;
            sim.run_until(now);
            pump(
                &sim,
                &mut capture_offset,
                &mut discovered,
                &mut verified,
                &mut pending,
            );
            let mut i = 0u64;
            for (mac, attempts) in pending.iter_mut() {
                if *attempts >= self.max_attempts {
                    continue;
                }
                for k in 0..self.fakes_per_target {
                    sim.inject(
                        now + 2_000 + i * 1_500 + u64::from(k) * hop,
                        attacker,
                        builder::fake_null_frame(*mac, MacAddr::FAKE),
                        BitRate::Mbps1,
                    );
                }
                *attempts += 1;
                i += 1;
            }
        }
        // Let trailing injections and their ACKs land, then flush.
        let tail = now + 300_000;
        sim.run_until(tail);
        pump(
            &sim,
            &mut capture_offset,
            &mut discovered,
            &mut verified,
            &mut pending,
        );

        let occupied_cells = sim.occupied_cells() as u64;
        if occupied_cells > 0 {
            sim.obs_mut().add(names::SIM_CELLS_OCCUPIED, occupied_cells);
        }
        CitySegmentOutcome {
            discovered: discovered.len(),
            verified: verified.len(),
            events_dispatched: sim.events_dispatched(),
            occupied_cells,
            survey_time_us: tail,
            obs: sim.take_obs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_devices::population::{TABLE2_APS, TABLE2_CLIENTS};

    /// A small synthetic population for fast tests.
    fn mini_population(clients: u32, aps: u32) -> CityPopulation {
        let full = CityPopulation::table2(5);
        let mut devices: Vec<DeviceSpec> = Vec::new();
        devices.extend(full.clients().take(clients as usize).cloned());
        devices.extend(full.aps().take(aps as usize).cloned());
        CityPopulation {
            devices,
            registry: full.registry.clone(),
        }
    }

    #[test]
    fn mini_survey_discovers_and_verifies_everyone() {
        let pop = mini_population(10, 10);
        let scanner = WardriveScanner {
            segment_size: 10,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert_eq!(report.verified, 20, "report: {report:?}");
        assert_eq!(report.total_clients, 10);
        assert_eq!(report.total_aps, 10);
        // The survey time covers all segments.
        assert!(report.survey_time_us >= 2 * scanner.dwell_us);
    }

    #[test]
    fn verification_rate_is_100_percent_of_discovered_members() {
        // The paper's headline: every discovered device responded.
        let pop = mini_population(15, 15);
        let scanner = WardriveScanner {
            segment_size: 15,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert_eq!(report.verified, report.discovered.min(30));
    }

    #[test]
    fn vendor_attribution_flows_through() {
        let pop = mini_population(30, 0);
        let scanner = WardriveScanner {
            segment_size: 15,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        // The first 30 clients of the deterministic population are all
        // Apple (count 143 ≥ 30).
        assert_eq!(report.client_counts.len(), 1);
        assert_eq!(report.client_counts[0].0, "Apple");
        assert_eq!(report.client_counts[0].1, 30);
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let pop = mini_population(12, 12);
        let scanner = WardriveScanner {
            segment_size: 6,
            dwell_us: 1_500_000,
            ..WardriveScanner::default()
        };
        let sequential = scanner.run_sharded(&pop, 1);
        assert_eq!(sequential, scanner.run_sharded(&pop, 4));
        assert_eq!(sequential, scanner.run(&pop));
    }

    #[test]
    fn faulty_survey_is_worker_invariant_and_counts_retries() {
        let pop = mini_population(8, 8);
        let scanner = WardriveScanner {
            segment_size: 8,
            dwell_us: 1_500_000,
            // One fake per round on a congested channel: roughly half
            // the rounds fail end-to-end, so retries are certain.
            fakes_per_target: 1,
            faults: FaultProfile::Congested,
            ..WardriveScanner::default()
        };
        let mut obs_seq = Obs::new();
        let sequential = scanner.run_observed(&pop, 1, &mut obs_seq);
        let mut obs_par = Obs::new();
        let parallel = scanner.run_observed(&pop, 4, &mut obs_par);
        assert_eq!(sequential, parallel);
        assert_eq!(obs_seq.metrics_json(), obs_par.metrics_json());
        // The impaired channel visibly injected faults and forced the
        // pipeline past one injection round on at least one target.
        assert!(obs_seq.counters.get(names::FAULT_MEDIUM_FRAMES_DROPPED) > 0);
        assert!(obs_seq.counters.get(names::RETRY_ATTEMPTS) > 0);
    }

    #[test]
    fn impatient_policy_quarantines_slow_targets() {
        let pop = mini_population(10, 10);
        let scanner = WardriveScanner {
            segment_size: 10,
            dwell_us: 2_000_000,
            faults: FaultProfile::Congested,
            retry: crate::retry::RetryPolicy {
                free_retries: 0,
                quarantine_after: 1,
                ..crate::retry::RetryPolicy::default()
            },
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert!(report.quarantined > 0, "report: {report:?}");
        assert!(report.verified + report.quarantined <= 20);
        // Quarantine is a retry-budget decision, so it must also be
        // reproducible run-to-run.
        assert_eq!(report, scanner.run(&pop));
    }

    #[test]
    fn clean_channel_never_quarantines() {
        let pop = mini_population(10, 10);
        let scanner = WardriveScanner {
            segment_size: 10,
            dwell_us: 2_000_000,
            ..WardriveScanner::default()
        };
        let report = scanner.run(&pop);
        assert_eq!(report.quarantined, 0, "report: {report:?}");
        assert_eq!(report.verified, 20);
    }

    /// A fast city config for tests: a small population on a dense
    /// square so segments still discover and verify someone.
    fn mini_city() -> CityWardrive {
        CityWardrive {
            devices: 600,
            segment_size: 200,
            dwell_us: 500_000,
            area_m: 400.0,
            ..CityWardrive::default()
        }
    }

    #[test]
    fn city_drive_discovers_and_verifies_devices() {
        let report = mini_city().run();
        assert!(report.segments >= 3, "report: {report:?}");
        assert!(report.discovered > 0, "report: {report:?}");
        assert!(report.verified > 0, "report: {report:?}");
        assert!(report.verified <= report.discovered);
        assert!(report.events_dispatched > 0);
        assert!(report.occupied_cells > 0);
    }

    #[test]
    fn city_drive_is_worker_invariant() {
        let drive = mini_city();
        let mut obs_seq = Obs::new();
        let sequential = drive.run_observed(1, &mut obs_seq);
        let mut obs_par = Obs::new();
        let parallel = drive.run_observed(4, &mut obs_par);
        assert_eq!(sequential, parallel);
        assert_eq!(obs_seq.metrics_json(), obs_par.metrics_json());
    }

    #[test]
    fn city_grid_matches_the_all_pairs_oracle() {
        // The cell grid only prunes candidates past the propagation
        // cutoff; reception fates — and therefore the whole report —
        // must match the brute-force oracle on the same keyed draws.
        let grid = mini_city().run();
        let oracle = CityWardrive {
            propagation: PropagationMode::OracleAllPairs,
            ..mini_city()
        }
        .run();
        assert_eq!(grid.discovered, oracle.discovered);
        assert_eq!(grid.verified, oracle.verified);
        assert_eq!(grid.events_dispatched, oracle.events_dispatched);
        // Only the grid tracks occupied cells.
        assert!(grid.occupied_cells > 0);
        assert_eq!(oracle.occupied_cells, 0);
    }

    #[test]
    fn city_calendar_queue_matches_the_heap() {
        let mut obs_cal = Obs::new();
        let calendar = mini_city().run_observed(1, &mut obs_cal);
        let mut obs_heap = Obs::new();
        let heap = CityWardrive {
            scheduler: SchedulerKind::Heap,
            ..mini_city()
        }
        .run_observed(1, &mut obs_heap);
        assert_eq!(calendar, heap);
        assert_eq!(obs_cal.metrics_json(), obs_heap.metrics_json());
    }

    #[test]
    fn table2_constants_available_for_comparison() {
        // The harness prints measured-vs-paper; make sure the reference
        // rows exist and sum correctly.
        let named: u32 = TABLE2_CLIENTS.iter().map(|(_, c)| c).sum();
        assert_eq!(named, 893);
        let named_aps: u32 = TABLE2_APS.iter().map(|(_, c)| c).sum();
        assert_eq!(named_aps, 3010);
    }
}
