//! Vital-sign (breathing) sensing through ACK CSI — §4.1's open
//! question, run end-to-end: fake frames elicit ACKs from the victim's
//! unmodified WiFi device while a person breathes nearby; the attacker
//! recovers the breathing rate from subcarrier amplitude.

use crate::injector::{FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_frame::{ControlFrame, Frame, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::csi::CsiChannel;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sensing::breathing::{estimate_breathing_rate, BreathingEstimate};
use polite_wifi_sensing::{CsiSeries, MotionScript};
use polite_wifi_sim::{FaultProfile, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Configuration of the breathing-sensing attack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VitalSignsAttack {
    /// Fake-frame rate (sensing needs 100–1000 pps per the paper).
    pub rate_pps: u32,
    /// Observation time, µs.
    pub duration_us: u64,
    /// Ground-truth breathing rate of the subject near the device.
    pub true_bpm: f64,
    /// Subcarrier to sense on.
    pub subcarrier: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Chaos profile installed on the medium.
    pub faults: FaultProfile,
}

impl Default for VitalSignsAttack {
    fn default() -> Self {
        VitalSignsAttack {
            rate_pps: 150,
            duration_us: 60_000_000,
            true_bpm: 15.0,
            subcarrier: 17,
            seed: 31,
            faults: FaultProfile::Clean,
        }
    }
}

/// What the attack recovered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VitalSignsResult {
    /// Ground truth.
    pub true_bpm: f64,
    /// CSI samples collected.
    pub samples: usize,
    /// Effective CSI sample rate.
    pub sample_rate_hz: f64,
    /// The spectral estimate, if the series was long enough.
    pub estimate: Option<BreathingEstimate>,
}

impl VitalSignsAttack {
    /// Runs the attack: inject → collect ACK CSI → spectral estimate.
    pub fn run(&self) -> VitalSignsResult {
        let victim_mac: MacAddr = "f2:6e:0b:77:88:99".parse().unwrap();
        let mut sim = Simulator::new(SimConfig::default(), self.seed);
        let _victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (7.0, 0.0));
        sim.set_monitor(attacker, true);
        sim.install_faults(&self.faults.plan());

        let plan = InjectionPlan {
            victim: victim_mac,
            forged_ta: MacAddr::FAKE,
            kind: InjectionKind::NullData,
            rate_pps: self.rate_pps,
            start_us: 0,
            duration_us: self.duration_us,
            bitrate: BitRate::Mbps1,
        };
        FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
        sim.run_until(self.duration_us + 100_000);

        let script = MotionScript::breathing(self.duration_us, self.true_bpm);
        let mut series = CsiSeries::new();
        let mut intensities = Vec::new();
        for cf in sim.node(attacker).capture.frames() {
            if matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE) {
                series.times_us.push(cf.ts_us);
                intensities.push(script.intensity_at(cf.ts_us));
            }
        }
        // One batched render of the whole ACK stream (bit-identical to
        // the per-ACK sampling loop it replaced).
        let mut channel = CsiChannel::new(self.seed);
        let csi = channel.sample_batch(&intensities);

        let amplitudes = csi.subcarrier_amplitudes(self.subcarrier);
        let sample_rate_hz = series.sample_rate_hz();
        VitalSignsResult {
            true_bpm: self.true_bpm,
            samples: csi.len(),
            sample_rate_hz,
            estimate: estimate_breathing_rate(&amplitudes, sample_rate_hz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breathing_rate_recovered_end_to_end() {
        let result = VitalSignsAttack {
            true_bpm: 15.0,
            duration_us: 45_000_000,
            ..VitalSignsAttack::default()
        }
        .run();
        assert!(result.samples > 6_000, "samples {}", result.samples);
        let est = result.estimate.expect("series long enough");
        assert!(
            (est.bpm - 15.0).abs() <= 1.0,
            "true 15 bpm, estimated {} (confidence {})",
            est.bpm,
            est.confidence
        );
        assert!(est.is_confident());
    }

    #[test]
    fn different_rates_distinguishable() {
        let slow = VitalSignsAttack {
            true_bpm: 10.0,
            duration_us: 45_000_000,
            seed: 5,
            ..VitalSignsAttack::default()
        }
        .run();
        let fast = VitalSignsAttack {
            true_bpm: 24.0,
            duration_us: 45_000_000,
            seed: 5,
            ..VitalSignsAttack::default()
        }
        .run();
        let s = slow.estimate.unwrap().bpm;
        let f = fast.estimate.unwrap().bpm;
        assert!(f > s + 8.0, "slow {s}, fast {f}");
    }
}
