//! Scheduler self-profiler: per-event-kind time attribution.
//!
//! The simulator's event loop records, for every event it handles, the
//! event kind, the *virtual* time the event advanced the clock by, and
//! the *wall-clock* time spent handling it. The two halves have very
//! different determinism properties and are kept strictly apart:
//!
//! * **count + virtual time** are pure functions of the scenario and
//!   seed — they merge commutatively and are part of every canonical
//!   export (the envelope's `profiler` object, [`Profiler::collapsed`]
//!   with [`Weight::Virtual`]), so worker-invariance byte-pins hold.
//! * **wall-clock time** is machine- and run-dependent — it is exposed
//!   only through explicitly non-deterministic channels (the harness's
//!   end-of-run stderr profile, [`Weight::Wall`] flame output) and never
//!   enters a byte-compared document. Same split `bench_report` makes
//!   between Work and Timing metrics.

use crate::json::JsonWriter;

/// Accumulated statistics for one event kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfStat {
    /// Events handled.
    pub count: u64,
    /// Total virtual time attributed (µs the event advanced the clock).
    pub virt_total_us: u64,
    /// Largest single virtual-time advance (µs).
    pub virt_max_us: u64,
    /// Total wall-clock handling time (ns). Non-deterministic.
    pub wall_total_ns: u64,
    /// Largest single wall-clock handling time (ns). Non-deterministic.
    pub wall_max_ns: u64,
}

/// Which time axis weights a collapsed-stack export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Deterministic virtual-time totals (µs).
    Virtual,
    /// Non-deterministic wall-clock totals (µs, rounded from ns).
    Wall,
}

/// Per-event-kind profile, merged like every other obs structure:
/// first-recorded order internally, sorted order in exports.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    entries: Vec<(String, ProfStat)>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Attributes one handled event to `kind`.
    pub fn record(&mut self, kind: &str, virt_us: u64, wall_ns: u64) {
        let stat = match self.entries.iter_mut().find(|(n, _)| n == kind) {
            Some((_, s)) => s,
            None => {
                self.entries.push((kind.to_string(), ProfStat::default()));
                &mut self.entries.last_mut().expect("just pushed").1
            }
        };
        stat.count += 1;
        stat.virt_total_us += virt_us;
        stat.virt_max_us = stat.virt_max_us.max(virt_us);
        stat.wall_total_ns += wall_ns;
        stat.wall_max_ns = stat.wall_max_ns.max(wall_ns);
    }

    /// Statistics for one kind, if recorded.
    pub fn get(&self, kind: &str) -> Option<&ProfStat> {
        self.entries.iter().find(|(n, _)| n == kind).map(|(_, s)| s)
    }

    /// Folds another profiler in (sums totals/counts, maxes maxes).
    pub fn merge(&mut self, other: &Profiler) {
        for (name, s) in &other.entries {
            let mine = match self.entries.iter_mut().find(|(n, _)| n == name) {
                Some((_, m)) => m,
                None => {
                    self.entries.push((name.clone(), ProfStat::default()));
                    &mut self.entries.last_mut().expect("just pushed").1
                }
            };
            mine.count += s.count;
            mine.virt_total_us += s.virt_total_us;
            mine.virt_max_us = mine.virt_max_us.max(s.virt_max_us);
            mine.wall_total_ns += s.wall_total_ns;
            mine.wall_max_ns = mine.wall_max_ns.max(s.wall_max_ns);
        }
    }

    /// Entries in sorted-name order (canonical export order).
    pub fn sorted(&self) -> Vec<(&str, &ProfStat)> {
        let mut v: Vec<_> = self.entries.iter().map(|(n, s)| (n.as_str(), s)).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flamegraph-compatible collapsed-stack text: one
    /// `root;kind weight` line per kind, sorted, weights in µs on the
    /// chosen axis. Feed to any collapsed-stack consumer
    /// (inferno/flamegraph.pl/speedscope).
    pub fn collapsed(&self, root: &str, weight: Weight) -> String {
        let mut out = String::new();
        for (name, s) in self.sorted() {
            let w = match weight {
                Weight::Virtual => s.virt_total_us,
                Weight::Wall => s.wall_total_ns / 1_000,
            };
            out.push_str(root);
            out.push(';');
            out.push_str(name);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// Canonical JSON object of the **deterministic** statistics only
    /// (count + virtual time; wall-clock deliberately excluded so the
    /// envelope stays byte-identical across machines and worker counts).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (name, s) in self.sorted() {
            w.key(name)
                .begin_object()
                .key("count")
                .u64(s.count)
                .key("virt_total_us")
                .u64(s.virt_total_us)
                .key("virt_max_us")
                .u64(s.virt_max_us)
                .end_object();
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_attributes() {
        let mut p = Profiler::new();
        p.record("arrival", 10, 100);
        p.record("arrival", 30, 50);
        p.record("poll", 0, 10);
        let a = p.get("arrival").unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.virt_total_us, 40);
        assert_eq!(a.virt_max_us, 30);
        assert_eq!(a.wall_total_ns, 150);
        assert_eq!(a.wall_max_ns, 100);
    }

    #[test]
    fn merge_is_commutative_on_deterministic_fields() {
        let mut a = Profiler::new();
        a.record("arrival", 10, 5);
        a.record("poll", 3, 5);
        let mut b = Profiler::new();
        b.record("poll", 7, 5);
        b.record("tx_end", 1, 5);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn collapsed_stacks_are_sorted_and_weighted() {
        let mut p = Profiler::new();
        p.record("tx_end", 5, 2_000);
        p.record("arrival", 10, 1_000);
        let virt = p.collapsed("sim", Weight::Virtual);
        assert_eq!(virt, "sim;arrival 10\nsim;tx_end 5\n");
        let wall = p.collapsed("sim", Weight::Wall);
        assert_eq!(wall, "sim;arrival 1\nsim;tx_end 2\n");
    }

    #[test]
    fn json_excludes_wall_clock() {
        let mut p = Profiler::new();
        p.record("arrival", 10, 12_345);
        let json = p.to_json();
        assert!(json.contains("\"virt_total_us\":10"));
        assert!(!json.contains("wall"));
    }
}
