//! E8 — §4.2's battery-life projections: the Logitech Circle 2 and
//! Amazon Blink XT2 under a 900 pps attack. With `--trials N` the
//! measurement repeats on N derived seeds and the projections use the
//! Monte-Carlo mean power.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::BatteryDrainAttack;
use polite_wifi_harness::{Experiment, RunArgs};

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);
    let args = exp.args();

    let measurements: Vec<_> = exp
        .run_trials(|t| {
            BatteryDrainAttack {
                rate_pps: 900,
                seed: t.seed,
                faults: args.faults,
                ..BatteryDrainAttack::default()
            }
            .run()
        })
        .into_iter()
        .flatten()
        .collect();
    if measurements.is_empty() {
        println!("\n(every trial degraded — writing a failure-only envelope)");
        return exp.finish_with_status(
            &spec.slug,
            &Vec::<polite_wifi_power::DrainProjection>::new(),
        );
    }
    for m in &measurements {
        exp.obs.add("sim.acks_received", m.acks_sent);
        polite_wifi_power::observe::record_state_durations(
            &mut exp.obs,
            "power.victim",
            &m.durations,
        );
        polite_wifi_power::observe::record_power(
            &mut exp.obs,
            "power.victim",
            &polite_wifi_power::PowerProfile::esp8266(),
            &m.durations,
        );
    }
    let mean_mw =
        measurements.iter().map(|m| m.average_power_mw).sum::<f64>() / measurements.len() as f64;
    println!(
        "\nmeasured victim power at 900 pps: {:.1} mW over {} trial(s) (paper: ~360 mW)\n",
        mean_mw,
        measurements.len()
    );
    exp.metrics.record("power_mw_at_900pps", mean_mw);

    let m = &measurements[0];
    let projections = BatteryDrainAttack::project_batteries(m);
    println!(
        "{:<20} {:>9} {:>14} {:>13} {:>9}",
        "device", "mWh", "advertised", "under attack", "speedup"
    );
    for p in &projections {
        println!(
            "{:<20} {:>9.0} {:>12.0} h {:>11.1} h {:>8.0}x",
            p.battery.name,
            p.battery.capacity_mwh,
            p.battery.advertised_life_hours,
            p.attacked_life_hours,
            p.speedup
        );
    }

    println!();
    compare(
        "Logitech Circle 2 drains in",
        "~6.7 h",
        &format!("{:.1} h", projections[0].attacked_life_hours),
    );
    compare(
        "Amazon Blink XT2 drains in",
        "~16.7 h",
        &format!("{:.1} h", projections[1].attacked_life_hours),
    );

    if args.faults.is_clean() {
        assert!((5.5..8.0).contains(&projections[0].attacked_life_hours));
        assert!((14.0..19.5).contains(&projections[1].attacked_life_hours));
    }
    exp.finish_with_status(&spec.slug, &projections)
}
