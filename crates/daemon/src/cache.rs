//! The content-addressed result store.
//!
//! Determinism makes caching sound: the harness guarantees that one
//! canonical scenario (at any worker count) produces byte-identical
//! envelopes, so the [`canonical_hash`] is a complete address for the
//! result — there is nothing else the envelope could depend on. Each
//! entry is one file, `<key>.env`, framed with an integrity header:
//!
//! ```text
//! polite-wifi-cache v1 <key> <crc32-hex> <byte-len>\n
//! <envelope bytes>
//! ```
//!
//! Reads re-derive the CRC-32 (the same FCS polynomial the frame codec
//! uses) and the length; any mismatch — truncation, bit rot, a foreign
//! file under the right name — is reported as [`CacheRead::Corrupt`] so
//! the caller recomputes and overwrites rather than serving garbage.
//!
//! [`canonical_hash`]: polite_wifi_scenario::spec::ScenarioSpec::canonical_hash

use polite_wifi_frame::fcs::crc32;
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &str = "polite-wifi-cache v1";

/// Outcome of a cache lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum CacheRead {
    /// Entry present and integrity-verified; the stored envelope bytes.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry exists but fails verification; the caller must treat it
    /// as absent and overwrite it with a recomputed result.
    Corrupt(String),
}

/// One directory of integrity-framed envelope files.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    pub fn new(dir: impl Into<PathBuf>) -> ResultStore {
        ResultStore { dir: dir.into() }
    }

    /// The file an entry for `key` lives in (exposed so tests can
    /// corrupt it deliberately).
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.env"))
    }

    /// Looks up `key`, verifying the integrity frame.
    pub fn get(&self, key: &str) -> CacheRead {
        let raw = match std::fs::read(self.entry_path(key)) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheRead::Miss,
            Err(e) => return CacheRead::Corrupt(format!("unreadable entry: {e}")),
        };
        let header_end = match raw.iter().position(|&b| b == b'\n') {
            Some(i) => i,
            None => return CacheRead::Corrupt("missing header line".to_string()),
        };
        let header = String::from_utf8_lossy(&raw[..header_end]).into_owned();
        let body = &raw[header_end + 1..];
        let fields: Vec<&str> = header.split(' ').collect();
        // "polite-wifi-cache" "v1" <key> <crc32-hex> <len>
        if fields.len() != 5 || format!("{} {}", fields[0], fields[1]) != MAGIC {
            return CacheRead::Corrupt(format!("bad header `{header}`"));
        }
        if fields[2] != key {
            return CacheRead::Corrupt(format!(
                "key mismatch: file says `{}`, path says `{key}`",
                fields[2]
            ));
        }
        let want_crc = match u32::from_str_radix(fields[3], 16) {
            Ok(c) => c,
            Err(_) => return CacheRead::Corrupt(format!("bad crc field `{}`", fields[3])),
        };
        let want_len = match fields[4].parse::<usize>() {
            Ok(n) => n,
            Err(_) => return CacheRead::Corrupt(format!("bad length field `{}`", fields[4])),
        };
        if body.len() != want_len {
            return CacheRead::Corrupt(format!(
                "length mismatch: header says {want_len}, body is {}",
                body.len()
            ));
        }
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return CacheRead::Corrupt(format!(
                "crc mismatch: header says {want_crc:08x}, body is {got_crc:08x}"
            ));
        }
        CacheRead::Hit(body.to_vec())
    }

    /// Stores `envelope` under `key`, atomically (temp file + rename),
    /// overwriting any existing entry.
    pub fn put(&self, key: &str, envelope: &[u8]) -> io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let header = format!("{MAGIC} {key} {:08x} {}\n", crc32(envelope), envelope.len());
        let tmp = self.dir.join(format!(".{key}.{}.tmp", std::process::id()));
        let mut framed = header.into_bytes();
        framed.extend_from_slice(envelope);
        std::fs::write(&tmp, &framed)?;
        let path = self.entry_path(key);
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Clobbers one byte of an entry's body in place — test helper for the
/// corruption-recovery paths (kept here so integration tests and CI
/// smoke share one definition of "corrupt").
pub fn corrupt_entry(path: &Path) -> io::Result<()> {
    let mut raw = std::fs::read(path)?;
    let header_end = raw
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header"))?;
    let target = header_end + 1 + (raw.len() - header_end - 1) / 2;
    raw[target] ^= 0x40;
    std::fs::write(path, raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> (ResultStore, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "polite-wifi-cache-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultStore::new(&dir), dir)
    }

    #[test]
    fn put_then_get_round_trips() {
        let (store, dir) = store();
        assert_eq!(store.get("00ff"), CacheRead::Miss);
        store.put("00ff", b"{\"seed\": 7}").unwrap();
        assert_eq!(store.get("00ff"), CacheRead::Hit(b"{\"seed\": 7}".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_byte_is_detected_and_overwrite_recovers() {
        let (store, dir) = store();
        store.put("abcd", b"payload payload payload").unwrap();
        corrupt_entry(&store.entry_path("abcd")).unwrap();
        match store.get("abcd") {
            CacheRead::Corrupt(why) => assert!(why.contains("crc mismatch"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        store.put("abcd", b"payload payload payload").unwrap();
        assert_eq!(
            store.get("abcd"),
            CacheRead::Hit(b"payload payload payload".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_key_swaps_are_detected() {
        let (store, dir) = store();
        store.put("1111", b"0123456789").unwrap();
        // Truncate the body.
        let path = store.entry_path("1111");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        match store.get("1111") {
            CacheRead::Corrupt(why) => assert!(why.contains("length mismatch"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // A valid entry renamed to the wrong key must not be served.
        store.put("2222", b"0123456789").unwrap();
        std::fs::copy(store.entry_path("2222"), store.entry_path("3333")).unwrap();
        match store.get("3333") {
            CacheRead::Corrupt(why) => assert!(why.contains("key mismatch"), "{why}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
