//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no registry access, so this proc-macro is
//! written against `proc_macro` alone — no `syn`, no `quote`. It parses
//! just enough item structure for the shapes this workspace derives:
//! plain (non-generic) structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple, or struct-like.
//!
//! Output conventions mirror upstream serde:
//! * named struct  → object with fields in declaration order,
//! * newtype struct → the inner value, transparently,
//! * tuple struct  → array,
//! * unit variant  → `"Variant"`,
//! * newtype variant → `{"Variant": value}`,
//! * tuple variant → `{"Variant": [..]}`,
//! * struct variant → `{"Variant": {..}}`.

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the derive learned about the item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { fields, .. } => struct_body(fields, "self."),
        Item::Enum { name, variants } => enum_body(name, variants),
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl must parse")
}

/// Serialization expression for struct fields (`prefix` is `self.` for
/// structs, empty for destructured enum variants).
fn struct_body(fields: &Fields, prefix: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&{prefix}{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{prefix}0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{prefix}{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = Vec::new();
    for (variant, fields) in variants {
        let arm = match fields {
            Fields::Unit => {
                format!("{name}::{variant} => ::serde::Value::String(String::from(\"{variant}\")),")
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{variant}({}) => ::serde::Value::Object(vec![\
                         (String::from(\"{variant}\"), {inner})]),",
                    binds.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let pairs: Vec<String> = field_names
                    .iter()
                    .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{variant} {{ {} }} => ::serde::Value::Object(vec![\
                         (String::from(\"{variant}\"), \
                          ::serde::Value::Object(vec![{}]))]),",
                    field_names.join(", "),
                    pairs.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join("\n"))
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#` + bracket group) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` / `pub(super)`.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic type `{name}` is unsupported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Splits a comma-separated token run at *top level*, tracking `<...>`
/// nesting so commas inside generic arguments don't split (groups are
/// single trees and nest for free).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().expect("nonempty").push(tt);
    }
    if parts.last().map_or(false, Vec::is_empty) {
        parts.pop();
    }
    parts
}

/// Field names of a named-fields body, in declaration order.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|field_tokens| {
            // [attrs] [vis] name ':' type — the name is the ident right
            // before the first top-level ':'.
            let mut j = 0;
            loop {
                match field_tokens.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = field_tokens.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    _ => break,
                }
            }
            match field_tokens.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        })
        .collect()
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|variant_tokens| {
            let mut j = 0;
            while let Some(TokenTree::Punct(p)) = variant_tokens.get(j) {
                if p.as_char() == '#' {
                    j += 2;
                } else {
                    break;
                }
            }
            let name = match variant_tokens.get(j) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, got {other:?}"),
            };
            j += 1;
            let fields = match variant_tokens.get(j) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                // Unit variant, possibly with `= discriminant`.
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}
