//! Single-device WiFi sensing (paper §4.3).
//!
//! One modified device — an IoT hub — round-robins fake frames across
//! its *unmodified* neighbours and senses motion from the ACK CSI of each.
//! The contrast with classical two-device sensing deployments is the
//! point: software changes on exactly one box.

use crate::injector::InjectionPlan;
use polite_wifi_frame::{builder, ControlFrame, Frame, MacAddr};
use polite_wifi_harness::{derive_trial_seed, Runner};
use polite_wifi_mac::StationConfig;
use polite_wifi_obs::{names, Obs};
use polite_wifi_phy::csi::{CsiChannel, CsiConfig};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sensing::batch::{self, SeriesBatch};
use polite_wifi_sensing::segment::{segment, Segment, SegmenterConfig};
use polite_wifi_sensing::{filter, MotionScript};
use polite_wifi_sim::{FaultProfile, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Configuration of the sensing hub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingHub {
    /// Fake-frame rate aimed at *each* target (the paper cites 100–1000
    /// packets/s as the sensing requirement).
    pub rate_pps_per_target: u32,
    /// Subcarrier to sense on.
    pub subcarrier: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Channel/device fault profile the scenario runs under.
    pub faults: FaultProfile,
}

impl Default for SensingHub {
    fn default() -> Self {
        SensingHub {
            rate_pps_per_target: 150,
            subcarrier: 17,
            seed: 7,
            faults: FaultProfile::Clean,
        }
    }
}

/// What the hub sensed at one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSensing {
    /// The unmodified neighbour polled.
    pub target: MacAddr,
    /// CSI samples collected.
    pub samples: usize,
    /// Detected motion windows, in µs of simulation time.
    pub motion_windows_us: Vec<(u64, u64)>,
}

/// The hub's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingReport {
    /// Devices whose software was modified (always 1 — the hub).
    pub devices_modified: usize,
    /// Devices participating in sensing (hub + unmodified targets).
    pub devices_participating: usize,
    /// Per-target results.
    pub targets: Vec<TargetSensing>,
}

impl SensingHub {
    /// Runs the sensing scenario: `scripts[i]` is the ground-truth motion
    /// near target `i`. Returns detected motion windows per target.
    pub fn run(&self, scripts: &[MotionScript]) -> SensingReport {
        let hub_mac: MacAddr = "18:b4:30:00:00:01".parse().unwrap(); // an IoT hub
        let duration_us = scripts.iter().map(|s| s.duration_us()).max().unwrap_or(0);

        let mut sim = Simulator::new(SimConfig::default(), self.seed);
        let hub = sim.add_node(StationConfig::client(hub_mac), (0.0, 0.0));
        sim.set_monitor(hub, true);
        sim.install_faults(&self.faults.plan());

        let mut targets = Vec::new();
        for i in 0..scripts.len() {
            let mac = MacAddr::new([0xf2, 0x6e, 0x0b, 0x00, 0x10, i as u8]);
            let angle = i as f64 * 2.0 * std::f64::consts::PI / scripts.len().max(1) as f64;
            let pos = (6.0 * angle.cos(), 6.0 * angle.sin());
            sim.add_node(StationConfig::client(mac), pos);
            targets.push(mac);
        }

        // Round-robin injection: each target gets rate_pps_per_target,
        // interleaved so the hub's radio never bursts one target.
        for (i, &target) in targets.iter().enumerate() {
            let plan = InjectionPlan {
                victim: target,
                forged_ta: hub_mac,
                kind: crate::injector::InjectionKind::NullData,
                rate_pps: self.rate_pps_per_target,
                start_us: (i as u64) * 1_000_000
                    / (self.rate_pps_per_target as u64)
                    / (scripts.len().max(1) as u64),
                duration_us,
                bitrate: BitRate::Mbps1,
            };
            sim.set_retries(hub, false);
            for &t in &plan.schedule() {
                sim.inject(
                    t,
                    hub,
                    builder::fake_null_frame(target, hub_mac),
                    plan.bitrate,
                );
            }
        }
        sim.run_until(duration_us + 100_000);

        // Attribute ACKs to targets temporally: the hub knows what it
        // injected last (ACKs carry no source address). Gather each
        // target's (timestamp, intensity) stream first, then render the
        // CSI in one `sample_batch` call per target — each channel owns
        // its RNG, so the per-channel draw order (and hence every float)
        // is identical to the old interleaved per-ACK sampling.
        let mut per_target_times: Vec<Vec<u64>> = vec![Vec::new(); targets.len()];
        let mut per_target_intensity: Vec<Vec<f64>> = vec![Vec::new(); targets.len()];
        let mut last_target: Option<usize> = None;
        for cf in sim.global_capture().frames() {
            match &cf.frame {
                Frame::Data(d) if d.addr2 == hub_mac => {
                    last_target = targets.iter().position(|&t| t == d.addr1);
                }
                Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == hub_mac => {
                    if let Some(i) = last_target.take() {
                        per_target_times[i].push(cf.ts_us);
                        per_target_intensity[i].push(scripts[i].intensity_at(cf.ts_us));
                    }
                }
                _ => {}
            }
        }

        let mut results = Vec::new();
        for (i, times) in per_target_times.iter().enumerate() {
            let mut channel = CsiChannel::new(self.seed ^ (i as u64 + 1));
            let batch = channel.sample_batch(&per_target_intensity[i]);
            let amplitudes = filter::condition(&batch.subcarrier_amplitudes(self.subcarrier));
            let segs = segment(&amplitudes, &SegmenterConfig::default());
            let motion_windows_us = segs
                .iter()
                .map(|&Segment { start, end }| {
                    (
                        times[start.min(times.len() - 1)],
                        times[(end - 1).min(times.len() - 1)],
                    )
                })
                .collect();
            results.push(TargetSensing {
                target: targets[i],
                samples: times.len(),
                motion_windows_us,
            });
        }

        SensingReport {
            devices_modified: 1,
            devices_participating: 1 + targets.len(),
            targets: results,
        }
    }
}

/// A sensing hub multiplexing *many* links (≥1k) over the batched
/// kernels — the city-scale counterpart of [`SensingHub`].
///
/// Where [`SensingHub`] drives the full MAC simulator per neighbour,
/// this front-end assumes the injection already succeeded at a steady
/// `rate_pps` per link (the regime the paper's §4.3 requires anyway) and
/// spends its time where a 1k-link deployment would: rendering per-link
/// CSI (`CsiChannel::sample_batch`), conditioning whole
/// [`SeriesBatch`]es of links at once, and segmenting the results. Links
/// are processed in row batches of `links_per_batch`; work fans out
/// across workers per batch and merges in batch order, so the report and
/// the absorbed [`Obs`] counters are byte-identical at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSensingHub {
    /// Number of sensed links.
    pub links: usize,
    /// CSI samples collected per link.
    pub samples_per_link: usize,
    /// Nominal ACK cadence per link (fixes the sample timestamps).
    pub rate_pps: u32,
    /// Subcarrier to sense on.
    pub subcarrier: usize,
    /// Seed; per-link channel seeds derive from it.
    pub seed: u64,
    /// Links conditioned/segmented per kernel pass (one `SeriesBatch`).
    pub links_per_batch: usize,
    /// CSI channel model for every link.
    pub csi: CsiConfig,
}

impl Default for BatchSensingHub {
    fn default() -> Self {
        BatchSensingHub {
            links: 1000,
            samples_per_link: 2048,
            rate_pps: 150,
            subcarrier: 17,
            seed: 11,
            links_per_batch: 64,
            csi: CsiConfig::default(),
        }
    }
}

/// One link's outcome in a [`BatchHubReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSensing {
    /// Link index.
    pub link: usize,
    /// Detected motion windows, µs.
    pub motion_windows_us: Vec<(u64, u64)>,
}

/// What the batched hub sensed across all links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchHubReport {
    /// Links sensed.
    pub links: usize,
    /// Kernel batches processed.
    pub batches: usize,
    /// Samples rendered per link.
    pub samples_per_link: usize,
    /// Links with at least one detected motion window.
    pub motion_links: usize,
    /// Total motion windows across links.
    pub motion_windows: usize,
    /// Per-link detections (only links with ≥1 window, to keep the
    /// envelope small at 1k links).
    pub detections: Vec<LinkSensing>,
}

impl BatchSensingHub {
    /// The deterministic ground-truth script for one link: every third
    /// link is idle; the rest get one walk-by whose timing varies with
    /// the link index.
    pub fn script_for_link(&self, link: usize) -> MotionScript {
        let duration_us = self.duration_us();
        if link % 3 == 1 {
            MotionScript::idle(duration_us)
        } else {
            let span = duration_us / 8;
            let start = duration_us / 4 + (link as u64 % 7) * span / 8;
            MotionScript::walk_by(duration_us, start, start + span)
        }
    }

    /// Observation time implied by the sample budget and cadence.
    pub fn duration_us(&self) -> u64 {
        self.samples_per_link as u64 * 1_000_000 / self.rate_pps.max(1) as u64
    }

    /// Runs the hub without observability.
    pub fn run(&self, workers: usize) -> BatchHubReport {
        self.run_observed(workers, &mut Obs::new())
    }

    /// Runs the hub, folding `hub.links`/`hub.batches` (and per-batch
    /// sample/window tallies) into `obs` in batch order.
    pub fn run_observed(&self, workers: usize, obs: &mut Obs) -> BatchHubReport {
        let per_batch = self.links_per_batch.max(1);
        let n_batches = self.links.div_ceil(per_batch);
        let tick_us = 1_000_000 / self.rate_pps.max(1) as u64;

        let runner = Runner::new(workers);
        let outcomes = runner.run_indexed(n_batches, |b| {
            let lo = b * per_batch;
            let hi = ((b + 1) * per_batch).min(self.links);
            let mut batch_obs = Obs::new();

            // Render each link's CSI in one batched pass, then gather
            // the sensed subcarrier into one row-per-link SeriesBatch.
            let mut rows = SeriesBatch::with_capacity(self.samples_per_link, hi - lo);
            let mut intensities = vec![0.0f64; self.samples_per_link];
            for link in lo..hi {
                let script = self.script_for_link(link);
                for (j, v) in intensities.iter_mut().enumerate() {
                    *v = script.intensity_at(j as u64 * tick_us);
                }
                let mut channel =
                    CsiChannel::with_config(derive_trial_seed(self.seed, link as u64), self.csi);
                let csi = channel.sample_batch(&intensities);
                rows.push_row(&csi.subcarrier_amplitudes(self.subcarrier));
                batch_obs.add(names::SENSING_CSI_SAMPLES, csi.len() as u64);
            }

            let conditioned = batch::condition_batch(&rows);
            let segments = batch::segment_batch(&conditioned, &SegmenterConfig::default());

            let mut detections = Vec::new();
            for (r, segs) in segments.iter().enumerate() {
                if segs.is_empty() {
                    continue;
                }
                let motion_windows_us = segs
                    .iter()
                    .map(|&Segment { start, end }| {
                        (
                            start.min(self.samples_per_link - 1) as u64 * tick_us,
                            (end - 1).min(self.samples_per_link - 1) as u64 * tick_us,
                        )
                    })
                    .collect::<Vec<_>>();
                batch_obs.add(
                    names::SENSING_MOTION_WINDOWS,
                    motion_windows_us.len() as u64,
                );
                detections.push(LinkSensing {
                    link: lo + r,
                    motion_windows_us,
                });
            }
            batch_obs.add(names::HUB_LINKS, (hi - lo) as u64);
            batch_obs.add(names::HUB_BATCHES, 1);
            (detections, batch_obs)
        });

        let mut detections = Vec::new();
        for (b, (dets, batch_obs)) in outcomes.into_iter().enumerate() {
            detections.extend(dets);
            obs.absorb(&batch_obs, b as u64);
        }
        BatchHubReport {
            links: self.links,
            batches: n_batches,
            samples_per_link: self.samples_per_link,
            motion_links: detections.len(),
            motion_windows: detections.iter().map(|d| d.motion_windows_us.len()).sum(),
            detections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_senses_motion_at_the_scripted_times() {
        // Figure 5's caption: movements near the target at t≈9 s and
        // t≈32 s create sharp CSI changes. Script two walk-bys.
        let script = {
            let mut s = MotionScript::walk_by(40_000_000, 9_000_000, 11_000_000);
            // Add a second event at 32 s.
            s.phases.pop(); // drop trailing idle
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 11_000_000,
                end_us: 32_000_000,
                label: "idle".into(),
                intensity: 0.0,
            });
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 32_000_000,
                end_us: 34_000_000,
                label: "walk".into(),
                intensity: 0.8,
            });
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 34_000_000,
                end_us: 40_000_000,
                label: "idle".into(),
                intensity: 0.0,
            });
            s
        };
        let report = SensingHub::default().run(&[script]);
        assert_eq!(report.devices_modified, 1);
        assert_eq!(report.devices_participating, 2);
        let t = &report.targets[0];
        assert!(t.samples > 4_000, "only {} samples", t.samples);
        assert_eq!(
            t.motion_windows_us.len(),
            2,
            "windows: {:?}",
            t.motion_windows_us
        );
        let (s1, e1) = t.motion_windows_us[0];
        let (s2, e2) = t.motion_windows_us[1];
        assert!(s1 < 10_000_000 && e1 > 9_000_000, "first window {s1}..{e1}");
        assert!(
            s2 < 33_000_000 && e2 > 32_000_000,
            "second window {s2}..{e2}"
        );
    }

    fn small_hub() -> BatchSensingHub {
        BatchSensingHub {
            links: 30,
            samples_per_link: 400,
            links_per_batch: 8,
            // A lean channel keeps the debug-mode test quick; the macro
            // bench exercises the full 56-subcarrier default.
            csi: CsiConfig {
                subcarriers: 8,
                taps: 4,
                ..CsiConfig::default()
            },
            subcarrier: 3,
            ..BatchSensingHub::default()
        }
    }

    #[test]
    fn batch_hub_detects_the_scripted_links() {
        let hub = small_hub();
        let report = hub.run(1);
        assert_eq!(report.links, 30);
        assert_eq!(report.batches, 4); // ceil(30 / 8)
        assert_eq!(report.samples_per_link, 400);
        // Links ≡ 1 (mod 3) are scripted idle; the rest get a walk-by.
        for det in &report.detections {
            assert_ne!(det.link % 3, 1, "idle link {} flagged", det.link);
            assert!(!det.motion_windows_us.is_empty());
        }
        // Most moving links are detected (20 scripted movers).
        assert!(
            report.motion_links >= 16,
            "only {} of 20 movers detected",
            report.motion_links
        );
    }

    #[test]
    fn batch_hub_is_worker_invariant() {
        let hub = small_hub();
        let mut obs1 = Obs::new();
        let r1 = hub.run_observed(1, &mut obs1);
        let mut obs4 = Obs::new();
        let r4 = hub.run_observed(4, &mut obs4);
        assert_eq!(r1, r4);
        assert_eq!(obs1.metrics_json(), obs4.metrics_json());
        assert_eq!(obs1.counters.get(names::HUB_LINKS), 30);
        assert_eq!(obs1.counters.get(names::HUB_BATCHES), 4);
    }

    #[test]
    fn multiple_unmodified_targets_sensed_concurrently() {
        let scripts = vec![
            MotionScript::walk_by(20_000_000, 5_000_000, 7_000_000),
            MotionScript::idle(20_000_000),
            MotionScript::walk_by(20_000_000, 12_000_000, 14_000_000),
        ];
        let report = SensingHub::default().run(&scripts);
        assert_eq!(report.devices_participating, 4);
        assert_eq!(report.targets.len(), 3);
        // Target 0 and 2 saw motion; target 1 did not.
        assert!(!report.targets[0].motion_windows_us.is_empty());
        assert!(report.targets[1].motion_windows_us.is_empty());
        assert!(!report.targets[2].motion_windows_us.is_empty());
        // And all were sensed without modifying them.
        assert_eq!(report.devices_modified, 1);
    }
}
