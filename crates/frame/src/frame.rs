//! The unified [`Frame`] type: parse and encode any supported 802.11 frame.

use crate::addr::MacAddr;
use crate::control::ControlFrame;
use crate::control::{FrameControl, FrameType};
use crate::data::DataFrame;
use crate::error::FrameError;
use crate::fcs;
use crate::mgmt::{ManagementBody, ManagementFrame};
use serde::{Deserialize, Serialize};

/// Any 802.11 frame this codec understands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// Management frame.
    Mgmt(ManagementFrame),
    /// Control frame.
    Ctrl(ControlFrame),
    /// Data frame.
    Data(DataFrame),
}

impl Frame {
    /// Parses a frame from raw bytes.
    ///
    /// With `with_fcs`, the last four bytes are treated as the FCS and
    /// verified first — mirroring the on-device order of operations that
    /// *causes* Polite WiFi: FCS first, content never.
    pub fn parse(buf: &[u8], with_fcs: bool) -> Result<Frame, FrameError> {
        let body = if with_fcs {
            let check = fcs::check_fcs(buf).ok_or(FrameError::Truncated {
                context: "FCS",
                needed: 4,
                available: buf.len(),
            })?;
            if !check.is_valid() {
                return Err(FrameError::BadFcs {
                    expected: check.carried,
                    computed: check.computed,
                });
            }
            check.body
        } else {
            buf
        };
        let fc = FrameControl::parse(body)?;
        match fc.ftype {
            FrameType::Management => Ok(Frame::Mgmt(ManagementFrame::parse(fc, body)?)),
            FrameType::Control => Ok(Frame::Ctrl(ControlFrame::parse(fc, body)?)),
            FrameType::Data => Ok(Frame::Data(DataFrame::parse(fc, body)?)),
            FrameType::Extension => Err(FrameError::UnsupportedSubtype {
                ftype: fc.ftype.bits(),
                subtype: fc.subtype,
            }),
        }
    }

    /// Encodes the frame, appending the FCS when `with_fcs` is set.
    pub fn encode(&self, with_fcs: bool) -> Vec<u8> {
        let mut bytes = match self {
            Frame::Mgmt(f) => f.encode(),
            Frame::Ctrl(f) => f.encode(),
            Frame::Data(f) => f.encode(),
        };
        if with_fcs {
            fcs::append_fcs(&mut bytes);
        }
        bytes
    }

    /// The Frame Control field.
    pub fn frame_control(&self) -> FrameControl {
        match self {
            Frame::Mgmt(f) => f.fc,
            Frame::Ctrl(f) => FrameControl::new(FrameType::Control, f.subtype()),
            Frame::Data(f) => f.fc,
        }
    }

    /// The receiver address (address 1) — the *only* thing a Polite-WiFi
    /// victim checks before acknowledging. `None` never occurs for the
    /// frame kinds modelled here but the Option keeps call sites honest.
    pub fn receiver(&self) -> Option<MacAddr> {
        match self {
            Frame::Mgmt(f) => Some(f.ra),
            Frame::Ctrl(f) => Some(f.ra()),
            Frame::Data(f) => Some(f.addr1),
        }
    }

    /// The transmitter address, when the frame carries one (ACK and CTS do
    /// not — which is why an ACK sniffer must correlate by time, as the
    /// paper's verifier thread does).
    pub fn transmitter(&self) -> Option<MacAddr> {
        match self {
            Frame::Mgmt(f) => Some(f.ta),
            Frame::Ctrl(f) => f.ta(),
            Frame::Data(f) => Some(f.addr2),
        }
    }

    /// Length on the air in bytes, including the 4-byte FCS.
    pub fn air_len(&self) -> usize {
        self.encode(false).len() + 4
    }

    /// True when the frame solicits an immediate ACK from its receiver:
    /// a unicast management or data frame. Control frames are answered by
    /// their own response rules (RTS→CTS), not by ACKs.
    pub fn solicits_ack(&self) -> bool {
        match self {
            Frame::Mgmt(f) => f.ra.is_unicast(),
            Frame::Data(f) => f.addr1.is_unicast(),
            Frame::Ctrl(_) => false,
        }
    }

    /// True when the frame solicits a CTS (i.e. it is an RTS).
    pub fn solicits_cts(&self) -> bool {
        matches!(self, Frame::Ctrl(ControlFrame::Rts { .. }))
    }

    /// A Wireshark-style "Info" column for this frame, used by the trace
    /// printers that regenerate Figures 2 and 3.
    pub fn info_column(&self) -> String {
        match self {
            Frame::Mgmt(f) => match &f.body {
                ManagementBody::Beacon { .. } => format!("Beacon frame, SN={}", f.seq.sequence),
                ManagementBody::ProbeRequest { .. } => {
                    format!("Probe Request, SN={}", f.seq.sequence)
                }
                ManagementBody::ProbeResponse { .. } => {
                    format!("Probe Response, SN={}", f.seq.sequence)
                }
                ManagementBody::Authentication { transaction, .. } => {
                    format!("Authentication, SEQ={transaction}")
                }
                ManagementBody::AssociationRequest { .. } => "Association Request".into(),
                ManagementBody::AssociationResponse { status, .. } => {
                    format!("Association Response, Status={status}")
                }
                ManagementBody::Deauthentication { .. } => {
                    format!("Deauthentication, SN={}", f.seq.sequence)
                }
                ManagementBody::Disassociation { .. } => {
                    format!("Disassociation, SN={}", f.seq.sequence)
                }
                ManagementBody::Action { .. } => "Action".into(),
            },
            Frame::Ctrl(c) => match c {
                ControlFrame::Rts { .. } => "Request-to-send, Flags=........".into(),
                ControlFrame::Cts { .. } => "Clear-to-send, Flags=........".into(),
                ControlFrame::Ack { .. } => "Acknowledgement, Flags=........".into(),
                ControlFrame::PsPoll { .. } => "PS-Poll".into(),
                ControlFrame::BlockAckReq { .. } => "802.11 Block Ack Req".into(),
                ControlFrame::BlockAck { .. } => "802.11 Block Ack".into(),
                ControlFrame::CfEnd { .. } => "CF-End".into(),
            },
            Frame::Data(d) => {
                if d.is_null() {
                    format!("Null function (No data), SN={}", d.seq.sequence)
                } else if d.fc.protected {
                    format!("QoS Data (protected), SN={}", d.seq.sequence)
                } else {
                    format!("Data, SN={}", d.seq.sequence)
                }
            }
        }
    }
}

impl From<ManagementFrame> for Frame {
    fn from(f: ManagementFrame) -> Frame {
        Frame::Mgmt(f)
    }
}

impl From<ControlFrame> for Frame {
    fn from(f: ControlFrame) -> Frame {
        Frame::Ctrl(f)
    }
}

impl From<DataFrame> for Frame {
    fn from(f: DataFrame) -> Frame {
        Frame::Data(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reason::ReasonCode;

    fn addr(last: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, last])
    }

    #[test]
    fn fake_null_frame_full_round_trip_with_fcs() {
        let f: Frame = DataFrame::null(addr(9), MacAddr::FAKE, 0).into();
        let bytes = f.encode(true);
        assert_eq!(bytes.len(), 28); // 24-byte header + FCS
        let parsed = Frame::parse(&bytes, true).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn corrupted_frame_fails_fcs() {
        let f: Frame = DataFrame::null(addr(9), MacAddr::FAKE, 0).into();
        let mut bytes = f.encode(true);
        bytes[4] ^= 0x01; // flip a bit in the receiver address
        assert!(matches!(
            Frame::parse(&bytes, true),
            Err(FrameError::BadFcs { .. })
        ));
    }

    #[test]
    fn ack_solicitation_rules() {
        let null: Frame = DataFrame::null(addr(9), MacAddr::FAKE, 0).into();
        assert!(null.solicits_ack());

        let bcast: Frame = DataFrame::null(MacAddr::BROADCAST, MacAddr::FAKE, 0).into();
        assert!(!bcast.solicits_ack());

        let ack: Frame = ControlFrame::Ack { ra: addr(1) }.into();
        assert!(!ack.solicits_ack());

        let rts: Frame = ControlFrame::Rts {
            duration_us: 100,
            ra: addr(1),
            ta: addr(2),
        }
        .into();
        assert!(!rts.solicits_ack());
        assert!(rts.solicits_cts());
    }

    #[test]
    fn deauth_solicits_ack_too() {
        // Management frames are acknowledged as well — the deauth bursts in
        // Figure 3 are themselves ACK-eliciting.
        let deauth: Frame = ManagementFrame::new(
            MacAddr::FAKE,
            addr(1),
            addr(1),
            3275,
            ManagementBody::Deauthentication {
                reason: ReasonCode::ClassThreeFrameFromNonassociatedSta,
            },
        )
        .into();
        assert!(deauth.solicits_ack());
    }

    #[test]
    fn info_column_matches_wireshark_wording() {
        let null: Frame = DataFrame::null(addr(9), MacAddr::FAKE, 12).into();
        assert_eq!(null.info_column(), "Null function (No data), SN=12");
        let ack: Frame = ControlFrame::Ack { ra: MacAddr::FAKE }.into();
        assert!(ack.info_column().starts_with("Acknowledgement"));
    }

    #[test]
    fn air_len_includes_fcs() {
        let ack: Frame = ControlFrame::Ack { ra: addr(1) }.into();
        assert_eq!(ack.air_len(), 14);
        let null: Frame = DataFrame::null(addr(1), addr(2), 0).into();
        assert_eq!(null.air_len(), 28);
    }

    #[test]
    fn parse_without_fcs() {
        let f: Frame = ControlFrame::Cts {
            duration_us: 44,
            ra: addr(5),
        }
        .into();
        let bytes = f.encode(false);
        assert_eq!(Frame::parse(&bytes, false).unwrap(), f);
    }

    #[test]
    fn frame_too_short_for_fcs() {
        assert!(matches!(
            Frame::parse(&[0xd4, 0x00], true),
            Err(FrameError::Truncated { .. })
        ));
    }

    #[test]
    fn receiver_and_transmitter_accessors() {
        let f: Frame = DataFrame::null(addr(9), MacAddr::FAKE, 0).into();
        assert_eq!(f.receiver(), Some(addr(9)));
        assert_eq!(f.transmitter(), Some(MacAddr::FAKE));
        let ack: Frame = ControlFrame::Ack { ra: MacAddr::FAKE }.into();
        assert_eq!(ack.receiver(), Some(MacAddr::FAKE));
        assert_eq!(ack.transmitter(), None);
    }
}
