//! The benchmark regression gate.
//!
//! Criterion benches are great locally but awkward as a CI gate: they
//! need a stable machine and minutes of runtime. `bench_report` runs the
//! same workloads (frame codec, exchange simulator, CSI pipeline) plus
//! three macro-scenarios (a wardrive shard, the Figure 5 keystroke
//! pipeline, a Figure 6 power sweep) through plain `Instant` timing
//! loops, and splits every metric into one of two kinds:
//!
//! - **work** — deterministic output counts (ACKs received, devices
//!   verified, mean power at an injection rate). Identical on every
//!   machine and every run; any drift means behaviour changed, so these
//!   gate hard in `--check` mode.
//! - **timing** — wall-clock ns/op. Machine-dependent, so informational
//!   by default; `--gate-timing` turns them into gates too (for local
//!   A/B runs against a baseline written on the *same* machine).
//!
//! Modes:
//!
//! ```text
//! bench_report                      # run, print, write results/BENCH_report.json
//! bench_report --write-baseline    # also write BENCH_baseline.json (commit it)
//! bench_report --check             # compare work metrics to the baseline;
//!                                   #   exit 1 on drift beyond --tolerance (%)
//! bench_report --quick             # shrink timing loops (CI); work metrics
//!                                   #   are unchanged, so --check still holds
//! bench_report --out FILE          # also write the rendered report to FILE
//!                                   #   (a committed snapshot); --label TEXT
//!                                   #   embeds a label in the JSON
//! bench_report --only csi,hub      # run a subset of sections (codec, sim,
//!                                   #   csi, wardrive, city, keystroke,
//!                                   #   power, hub); --check then compares
//!                                   #   only the measured metrics
//! bench_report --from FILE --check # re-check a previously written report
//!                                   #   without re-running the workloads
//!                                   #   (the CI trend job gates one run
//!                                   #   against two baselines this way)
//! bench_report --gate-only PREFIXES # gate only metrics whose name starts
//!                                   #   with one of the comma-separated
//!                                   #   prefixes; everything else is
//!                                   #   skipped. CI uses this to timing-gate
//!                                   #   the ms-scale sensing stages without
//!                                   #   tripping on ns-scale codec noise
//! ```
//!
//! The baseline is parsed with `polite_wifi_obs::json::parse` (the
//! vendored serde_json is write-only by design).

use polite_wifi_frame::{builder, fcs, Frame, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_obs::json::{parse, JsonValue, JsonWriter};
use polite_wifi_sensing::filter;
use polite_wifi_sensing::keystroke::{detect_keystrokes, KeystrokeDetectorConfig};
use polite_wifi_sim::{SimConfig, Simulator};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

const DEFAULT_BASELINE: &str = "BENCH_baseline.json";
const REPORT_SLUG: &str = "BENCH_report";

/// What a metric means for the gate: `Work` values are deterministic and
/// always compared; `Timing` values are wall-clock and informational
/// unless `--gate-timing`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Work,
    Timing,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Work => "work",
            Kind::Timing => "timing",
        }
    }
}

#[derive(Debug)]
struct Metric {
    name: String,
    kind: Kind,
    value: f64,
    unit: String,
}

#[derive(Debug)]
struct Report {
    metrics: Vec<Metric>,
}

impl Report {
    fn new() -> Report {
        Report {
            metrics: Vec::new(),
        }
    }

    fn work(&mut self, name: &str, value: f64, unit: &'static str) {
        self.metrics.push(Metric {
            name: name.to_string(),
            kind: Kind::Work,
            value,
            unit: unit.to_string(),
        });
    }

    fn timing(&mut self, name: &str, value: f64, unit: &'static str) {
        self.metrics.push(Metric {
            name: name.to_string(),
            kind: Kind::Timing,
            value,
            unit: unit.to_string(),
        });
    }

    /// Rehydrates a report previously written by `to_json` — the `--from`
    /// path, which re-checks a committed snapshot without re-running the
    /// workloads (the CI trend job gates the same run against two
    /// baselines this way).
    fn from_json(doc: &JsonValue) -> Result<Report, String> {
        let metrics = doc
            .get("metrics")
            .and_then(|m| m.as_object())
            .ok_or("report has no `metrics` object")?;
        let mut report = Report::new();
        for (name, entry) in metrics {
            let kind = match entry.get("kind").and_then(|k| k.as_str()) {
                Some("timing") => Kind::Timing,
                _ => Kind::Work,
            };
            let value = entry
                .get("value")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("metric `{name}` has no numeric value"))?;
            let unit = entry
                .get("unit")
                .and_then(|u| u.as_str())
                .unwrap_or("")
                .to_string();
            report.metrics.push(Metric {
                name: name.clone(),
                kind,
                value,
                unit,
            });
        }
        Ok(report)
    }

    fn to_json(&self, quick: bool, label: Option<&str>) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("schema")
            .string("polite-wifi-bench-report-v1")
            .key("quick")
            .bool(quick);
        if let Some(label) = label {
            w.key("label").string(label);
        }
        w.key("metrics").begin_object();
        for m in &self.metrics {
            w.key(&m.name)
                .begin_object()
                .key("kind")
                .string(m.kind.label())
                .key("value")
                .f64(m.value)
                .key("unit")
                .string(&m.unit)
                .end_object();
        }
        w.end_object().end_object();
        w.finish()
    }
}

/// Times `iters` calls of `f`, returning mean ns/op. The closure's
/// result is black-boxed so the work can't be optimised away.
fn time_ns<T, F: FnMut() -> T>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn victim() -> MacAddr {
    "f2:6e:0b:11:22:33".parse().unwrap()
}

/// The criterion `simulator/1000_fake_ack_exchanges` workload, verbatim.
fn exchange_sim(n_frames: u64) -> Simulator {
    let mut sim = Simulator::new(SimConfig::default(), 7);
    let _v = sim.add_node(StationConfig::client(victim()), (0.0, 0.0));
    let a = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_retries(a, false);
    for i in 0..n_frames {
        sim.inject(
            i * 1_000,
            a,
            builder::fake_null_frame(victim(), MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim
}

use polite_wifi_phy::rate::BitRate;

/// The criterion CSI series: 45 s at 150 Hz, bursts every 100 samples.
fn csi_series(n: usize) -> Vec<f64> {
    let mut ch = polite_wifi_phy::csi::CsiChannel::new(1);
    (0..n)
        .map(|i| {
            ch.sample(if i % 100 < 30 { 0.6 } else { 0.0 })
                .amplitude(17)
        })
        .collect()
}

fn run_codec(report: &mut Report, quick: bool) {
    let iters = if quick { 2_000 } else { 20_000 };
    let fake = builder::fake_null_frame(victim(), MacAddr::FAKE);
    let fake_bytes = fake.encode(true);
    let beacon = builder::beacon(victim(), "PrivateNet", 6, 7, 123_456, true);
    let beacon_bytes = beacon.encode(true);
    let payload_1500 = vec![0xa5u8; 1500];

    report.work("work.codec.fake_null_len", fake_bytes.len() as f64, "bytes");
    report.work("work.codec.beacon_len", beacon_bytes.len() as f64, "bytes");
    report.work(
        "work.codec.crc32_1500B",
        fcs::crc32(&payload_1500) as f64,
        "checksum",
    );
    report.timing(
        "time.codec.encode_fake_null",
        time_ns(iters, || fake.encode(true)),
        "ns/op",
    );
    report.timing(
        "time.codec.parse_fake_null",
        time_ns(iters, || Frame::parse(&fake_bytes, true).unwrap()),
        "ns/op",
    );
    report.timing(
        "time.codec.parse_beacon",
        time_ns(iters, || Frame::parse(&beacon_bytes, true).unwrap()),
        "ns/op",
    );
    report.timing(
        "time.codec.crc32_1500B",
        time_ns(iters, || fcs::crc32(&payload_1500)),
        "ns/op",
    );
}

/// Returns the measured per-event wall cost in ms — the city macro uses
/// it to price its extrapolated all-pairs baseline.
fn run_exchange_sim(report: &mut Report) -> f64 {
    let start = Instant::now();
    let mut sim = exchange_sim(1000);
    sim.run_until(2_000_000);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // The new obs scope doubles as the work-metric source: any change to
    // MAC/sim behaviour shows up here before it shows up in a figure.
    let obs = sim.obs();
    report.work(
        "work.sim.acks_received",
        obs.counters.get("sim.acks_received") as f64,
        "acks",
    );
    report.work(
        "work.sim.frames_txed",
        obs.counters.get("sim.frames_txed") as f64,
        "frames",
    );
    report.work(
        "work.sim.ack_timeouts",
        obs.counters.get("sim.ack_timeouts") as f64,
        "timeouts",
    );
    let turnaround = obs.histograms.get("mac.ack_turnaround_us");
    report.work(
        "work.sim.ack_turnaround_mean_us",
        turnaround.and_then(|h| h.mean()).unwrap_or(0.0),
        "us",
    );
    report.work(
        "work.sim.events_dispatched",
        obs.counters.get("sim.events_dispatched") as f64,
        "events",
    );
    report.timing("time.sim.1000_exchanges", wall_ms, "ms");
    report.timing(
        "time.sim.events_per_sec",
        obs.counters.get("sim.events_dispatched") as f64 / (wall_ms / 1e3),
        "events/s",
    );
    wall_ms / (obs.counters.get("sim.events_dispatched") as f64).max(1.0)
}

fn run_csi_pipeline(report: &mut Report, quick: bool) {
    use polite_wifi_sensing::batch::{self, BatchPolicy};
    use polite_wifi_sensing::features;
    use polite_wifi_sensing::segment::{segment, SegmenterConfig};

    let iters = if quick { 3 } else { 20 };
    let s = csi_series(6750);
    let conditioned = filter::condition(&s);
    let cfg = KeystrokeDetectorConfig::default();
    let keystrokes = detect_keystrokes(&conditioned, &cfg);
    let seg_cfg = SegmenterConfig::default();
    let segments = segment(&conditioned, &seg_cfg);

    report.work(
        "work.csi.conditioned_mean_x1e6",
        (conditioned.iter().sum::<f64>() / conditioned.len() as f64 * 1e6).round(),
        "amp",
    );
    report.work(
        "work.csi.keystrokes_detected",
        keystrokes.len() as f64,
        "events",
    );
    report.work("work.csi.segments_45s", segments.len() as f64, "segments");
    report.timing(
        "time.csi.condition_45s",
        time_ns(iters, || filter::condition(&s)) / 1e6,
        "ms",
    );

    // Per-stage breakdown of the conditioning chain, timed through the
    // same kernels the active `BatchPolicy` dispatches to — so the trend
    // job can see *which* stage regressed, not just the chain total.
    let policy = BatchPolicy::active();
    let hampel_ns = if policy == BatchPolicy::Scalar {
        time_ns(iters, || filter::hampel(&s, 5, 3.0))
    } else {
        time_ns(iters, || batch::hampel_exact(&s, 5, 3.0))
    };
    report.timing("time.csi.hampel_45s", hampel_ns / 1e6, "ms");
    let despiked = if policy == BatchPolicy::Scalar {
        filter::hampel(&s, 5, 3.0)
    } else {
        batch::hampel_exact(&s, 5, 3.0)
    };
    let ma_ns = if policy == BatchPolicy::Reassociated {
        time_ns(iters, || batch::moving_average_reassoc(&despiked, 2))
    } else {
        time_ns(iters, || filter::moving_average(&despiked, 2))
    };
    report.timing("time.csi.moving_average_45s", ma_ns / 1e6, "ms");
    report.timing(
        "time.csi.features_45s",
        time_ns(iters, || {
            features::sliding_features(&conditioned, seg_cfg.window_len, seg_cfg.hop)
        }) / 1e6,
        "ms",
    );
    report.timing(
        "time.csi.segment_45s",
        time_ns(iters, || segment(&conditioned, &seg_cfg)) / 1e6,
        "ms",
    );
    report.timing(
        "time.csi.keystroke_detect_45s",
        time_ns(iters, || detect_keystrokes(&conditioned, &cfg)) / 1e6,
        "ms",
    );
}

/// The 1k-link sensing hub macro: renders, conditions and segments a
/// thousand links' CSI through the batched kernels. Work metrics are
/// mode-invariant (the hub always runs at full scale); the wall time is
/// the headline `time.macro.sensing_hub_1k` trend metric.
fn run_sensing_hub_macro(report: &mut Report) {
    use polite_wifi_core::BatchSensingHub;
    use polite_wifi_obs::{names, Obs};

    let hub = BatchSensingHub::default();
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8);
    let mut obs = Obs::new();
    let start = Instant::now();
    let scan = hub.run_observed(workers, &mut obs);
    report.timing(
        "time.macro.sensing_hub_1k",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    report.work("work.hub.links", scan.links as f64, "links");
    report.work("work.hub.batches", scan.batches as f64, "batches");
    report.work("work.hub.motion_links", scan.motion_links as f64, "links");
    report.work(
        "work.hub.motion_windows",
        scan.motion_windows as f64,
        "windows",
    );
    report.work(
        "work.hub.csi_samples",
        obs.counters.get(names::SENSING_CSI_SAMPLES) as f64,
        "samples",
    );
}

/// Serving-layer macro: one in-process daemon, a cold wave of distinct
/// jobs, then a warm wave of identical resubmissions. The work metrics
/// (jobs completed, cache hits) are exact by construction; the wall
/// times of the two waves are informational.
fn run_daemon_serving(report: &mut Report) {
    use polite_wifi_daemon::{http, Daemon, DaemonConfig};
    use polite_wifi_obs::names;

    const JOBS: u64 = 8;
    let spec_for = |seed: u64| -> String {
        let template = r#"{
  "name": "B: daemon bench job",
  "paper_ref": "none",
  "slug": "daemon_bench",
  "runner": "generic",
  "run": {"seed": SEED, "trials": 2, "workers": 1},
  "topology": {
    "duration_us": 300000,
    "nodes": [
      {"name": "ap", "mac": "68:02:b8:00:00:01", "kind": "ap", "position": [2, 0], "ssid": "Net"},
      {"name": "victim", "mac": "f2:6e:0b:11:22:33", "kind": "client", "position": [0, 0]},
      {"name": "attacker", "mac": "aa:bb:bb:bb:bb:bb", "kind": "monitor", "position": [4, 0]}
    ],
    "links": [["victim", "ap"]]
  },
  "attacks": [
    {"kind": "null-flood", "attacker": "attacker", "victim": "victim",
     "rate_pps": 100, "start_us": 1000, "duration_us": 250000, "bitrate": "6"}
  ],
  "probes": [
    {"kind": "station-stat", "node": "victim", "stat": "acks_sent", "metric": "acks_sent"}
  ]
}"#;
        template.replace("SEED", &seed.to_string())
    };

    let state_dir =
        std::env::temp_dir().join(format!("polite-wifi-bench-daemon-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let daemon = Daemon::start(DaemonConfig {
        workers: 2,
        state_dir: state_dir.clone(),
        ..DaemonConfig::default()
    })
    .expect("daemon start");

    let submit_wave = |expect_cache: &str| {
        for seed in 0..JOBS {
            let (status, headers, body) = http::request(
                daemon.addr(),
                "POST",
                "/submit?wait=1",
                spec_for(seed).as_bytes(),
            )
            .expect("submit");
            assert_eq!(
                status,
                200,
                "daemon bench job failed: {}",
                String::from_utf8_lossy(&body)
            );
            assert_eq!(
                headers.get("x-cache").map(String::as_str),
                Some(expect_cache)
            );
        }
    };

    let start = Instant::now();
    submit_wave("miss");
    report.timing(
        "time.daemon.cold_wave",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    let start = Instant::now();
    submit_wave("hit");
    report.timing(
        "time.daemon.warm_wave",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    report.work(
        "work.daemon.jobs",
        daemon.counter(names::DAEMON_JOBS_COMPLETED) as f64,
        "jobs",
    );
    report.work(
        "work.daemon.cache_hits",
        daemon.counter(names::DAEMON_CACHE_HIT) as f64,
        "hits",
    );
    daemon.drain().expect("daemon drain");
    let _ = std::fs::remove_dir_all(&state_dir);
}

fn run_wardrive_shard(report: &mut Report) {
    use polite_wifi_core::WardriveScanner;
    use polite_wifi_devices::CityPopulation;

    let mut population = CityPopulation::table2(2020);
    population.devices.truncate(160);
    let scanner = WardriveScanner {
        seed: 20,
        ..WardriveScanner::default()
    };
    let start = Instant::now();
    let scan = scanner.run_sharded(&population, 1);
    report.timing(
        "time.macro.wardrive_shard",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    report.work(
        "work.wardrive.discovered",
        scan.discovered as f64,
        "devices",
    );
    report.work("work.wardrive.verified", scan.verified as f64, "devices");
}

fn run_city_macro(report: &mut Report, per_event_ms: f64) {
    use polite_wifi_core::CityWardrive;
    use polite_wifi_obs::Obs;

    // The full 100k-device city in quick and full mode alike (the city
    // work metrics must be mode-invariant for --check to hold in CI),
    // at a 500 ms dwell so the macro stays a bench, not a soak test.
    // The envelope is worker-invariant, so fanning over the pool only
    // changes wall time — throughput is reported per core.
    let drive = CityWardrive {
        dwell_us: 500_000,
        ..CityWardrive::default()
    };
    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(8);
    let mut obs = Obs::new();
    let start = Instant::now();
    let scan = drive.run_observed(workers, &mut obs);
    let core_s = (start.elapsed().as_secs_f64() * workers as f64).max(1e-9);
    report.timing(
        "time.macro.city_wardrive_100k",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    report.timing(
        "time.macro.city_events_per_sec_core",
        scan.events_dispatched as f64 / core_s,
        "events/s",
    );

    // The all-pairs comparison is structural: the legacy mode schedules
    // one arrival per (transmission, other node) — `segment_size - 1`
    // of them — where the grid schedules one per in-range receiver.
    // Pricing every extrapolated event at the 2-node exchange bench's
    // per-event cost *underestimates* the baseline (its active-list
    // scans are tiny), so the reported speedup is a lower bound.
    let arrivals = obs
        .profiler
        .sorted()
        .iter()
        .find(|(n, _)| *n == "arrival")
        .map_or(0, |(_, s)| s.count);
    let txed = obs.counters.get("sim.frames_txed");
    let allpairs_events =
        scan.events_dispatched - arrivals + txed * (drive.segment_size as u64 - 1);
    let allpairs_ms = allpairs_events as f64 * per_event_ms;
    report.timing("time.macro.city_allpairs_extrapolated", allpairs_ms, "ms");
    report.timing(
        "time.macro.city_speedup_vs_allpairs",
        allpairs_ms / (core_s * 1e3),
        "x",
    );
    report.work(
        "work.city.events_dispatched",
        scan.events_dispatched as f64,
        "events",
    );
    report.work("work.city.segments", scan.segments as f64, "segments");
    report.work("work.city.discovered", scan.discovered as f64, "devices");
    report.work("work.city.verified", scan.verified as f64, "devices");
    report.work(
        "work.city.occupied_cells",
        scan.occupied_cells as f64,
        "cells",
    );
}

fn run_keystroke_macro(report: &mut Report) {
    use polite_wifi_core::KeystrokeAttack;

    let start = Instant::now();
    let result = KeystrokeAttack::figure5(2020).run();
    report.timing(
        "time.macro.keystroke_fig5",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    report.work(
        "work.keystroke.acks_measured",
        result.acks_measured as f64,
        "acks",
    );
    let (hits, _misses, false_alarms) = result.keystroke_score;
    report.work("work.keystroke.hits", hits as f64, "events");
    report.work("work.keystroke.false_alarms", false_alarms as f64, "events");
}

fn run_power_macro(report: &mut Report) {
    use polite_wifi_core::BatteryDrainAttack;

    let rates = [0u32, 20, 900];
    let start = Instant::now();
    let sweep = BatteryDrainAttack::sweep(&rates, 2020);
    report.timing(
        "time.macro.power_sweep",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    for (m, rate) in sweep.iter().zip(rates) {
        report.work(
            &format!("work.power.mw_at_{rate}pps"),
            m.average_power_mw,
            "mW",
        );
    }
}

/// One gate comparison: baseline vs current, relative drift in percent.
struct Drift {
    name: String,
    baseline: f64,
    current: f64,
    percent: f64,
}

fn check(
    baseline: &JsonValue,
    report: &Report,
    tolerance: f64,
    gate_timing: bool,
    partial: bool,
    gate_only: Option<&[String]>,
) -> Result<usize, Vec<String>> {
    let mut failures: Vec<String> = Vec::new();
    let mut drifts: Vec<Drift> = Vec::new();

    let base_metrics = baseline
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or_else(|| vec!["baseline has no `metrics` object".to_string()])?;

    for (name, entry) in base_metrics {
        let kind = entry.get("kind").and_then(|k| k.as_str()).unwrap_or("work");
        if kind == "timing" && !gate_timing {
            continue;
        }
        if let Some(prefixes) = gate_only {
            if !prefixes.iter().any(|p| name.starts_with(p.as_str())) {
                continue;
            }
        }
        let base_value = match entry.get("value").and_then(|v| v.as_f64()) {
            Some(v) => v,
            None => {
                failures.push(format!("baseline metric `{name}` has no numeric value"));
                continue;
            }
        };
        let current = match report.metrics.iter().find(|m| &m.name == name) {
            Some(m) => m.value,
            None if partial => continue, // --only ran a subset; skip the rest
            None => {
                failures.push(format!(
                    "metric `{name}` is in the baseline but was not measured \
                     (workload removed? re-baseline with --write-baseline)"
                ));
                continue;
            }
        };
        let percent = if base_value == 0.0 {
            if current == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (current - base_value).abs() / base_value.abs() * 100.0
        };
        if percent > tolerance {
            failures.push(format!(
                "`{name}` drifted {percent:.1}% (baseline {base_value}, now {current}, \
                 tolerance {tolerance}%)"
            ));
        }
        drifts.push(Drift {
            name: name.clone(),
            baseline: base_value,
            current,
            percent,
        });
    }

    println!(
        "\n{:<34} {:>14} {:>14} {:>8}",
        "gated metric", "baseline", "current", "drift"
    );
    for d in &drifts {
        println!(
            "{:<34} {:>14.3} {:>14.3} {:>7.2}%",
            d.name, d.baseline, d.current, d.percent
        );
    }
    // New metrics the baseline doesn't know about yet: informational.
    for m in report.metrics.iter().filter(|m| m.kind == Kind::Work) {
        if !base_metrics.iter().any(|(name, _)| name == &m.name) {
            println!(
                "(new metric `{}` not in baseline — consider re-baselining)",
                m.name
            );
        }
    }

    if failures.is_empty() {
        Ok(drifts.len())
    } else {
        Err(failures)
    }
}

#[derive(Debug)]
struct Args {
    check: bool,
    write_baseline: bool,
    baseline: PathBuf,
    tolerance: f64,
    quick: bool,
    gate_timing: bool,
    /// Extra copy of the rendered report (e.g. a committed labelled
    /// snapshot like `BENCH_pr5.json`).
    out: Option<PathBuf>,
    /// Free-form label embedded in the report JSON (`"label"` key).
    label: Option<String>,
    /// Run only these comma-separated sections (codec, sim, csi,
    /// wardrive, city, keystroke, power, hub, daemon). In `--check`
    /// mode the comparison is restricted to the metrics actually
    /// measured.
    only: Option<Vec<String>>,
    /// Re-check a previously written report instead of running the
    /// workloads (no report/baseline files are written in this mode).
    from: Option<PathBuf>,
    /// Gate only metrics whose name starts with one of these prefixes
    /// (after the work/timing kind filter). Lets CI timing-gate the
    /// stable ms-scale sensing stages without tripping on ns-scale
    /// codec timings, which are pure scheduler noise on shared runners.
    gate_only: Option<Vec<String>>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        check: false,
        write_baseline: false,
        baseline: PathBuf::from(DEFAULT_BASELINE),
        tolerance: 15.0,
        quick: false,
        gate_timing: false,
        out: None,
        label: None,
        only: None,
        from: None,
        gate_only: None,
    };
    let mut args = std::env::args().skip(1);
    let mut unknown: Vec<String> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => out.check = true,
            "--write-baseline" => out.write_baseline = true,
            "--quick" => out.quick = true,
            "--gate-timing" => out.gate_timing = true,
            "--baseline" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--baseline needs a value".to_string())?;
                out.baseline = PathBuf::from(raw);
            }
            "--tolerance" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--tolerance needs a value".to_string())?;
                out.tolerance = raw
                    .parse()
                    .map_err(|_| format!("--tolerance: invalid value `{raw}`"))?;
                if !out.tolerance.is_finite() || out.tolerance <= 0.0 {
                    return Err(format!(
                        "--tolerance must be a positive percentage, got `{raw}`"
                    ));
                }
            }
            "--out" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--out needs a value".to_string())?;
                out.out = Some(PathBuf::from(raw));
            }
            "--label" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--label needs a value".to_string())?;
                out.label = Some(raw);
            }
            "--only" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--only needs a value".to_string())?;
                let sections: Vec<String> = raw
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                const KNOWN: [&str; 9] = [
                    "codec",
                    "sim",
                    "csi",
                    "wardrive",
                    "city",
                    "keystroke",
                    "power",
                    "hub",
                    "daemon",
                ];
                for s in &sections {
                    if !KNOWN.contains(&s.as_str()) {
                        return Err(format!(
                            "--only: unknown section `{s}` (known: {})",
                            KNOWN.join(", ")
                        ));
                    }
                }
                if sections.is_empty() {
                    return Err("--only needs at least one section".to_string());
                }
                out.only = Some(sections);
            }
            "--from" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--from needs a value".to_string())?;
                out.from = Some(PathBuf::from(raw));
            }
            "--gate-only" => {
                let raw = args
                    .next()
                    .ok_or_else(|| "--gate-only needs a value".to_string())?;
                let prefixes: Vec<String> = raw
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if prefixes.is_empty() {
                    return Err("--gate-only needs at least one prefix".to_string());
                }
                out.gate_only = Some(prefixes);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_report [--check] [--write-baseline] [--baseline FILE] \
                     [--tolerance PCT] [--quick] [--gate-timing] [--out FILE] [--label TEXT] \
                     [--only SECTIONS] [--from FILE] [--gate-only PREFIXES]"
                        .to_string(),
                )
            }
            other => unknown.push(format!("`{other}`")),
        }
    }
    if !unknown.is_empty() {
        let plural = if unknown.len() == 1 { "" } else { "s" };
        return Err(format!(
            "unknown flag{plural} {} (try --help)",
            unknown.join(", ")
        ));
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    println!("bench_report: criterion workloads + macro-scenarios as a regression gate");
    println!(
        "mode: {}{}tolerance {}%",
        if args.quick { "quick, " } else { "full, " },
        if args.check { "check, " } else { "" },
        args.tolerance
    );

    let report = if let Some(from_path) = &args.from {
        // Re-check a committed snapshot — no workloads, no new files.
        let raw = match std::fs::read_to_string(from_path) {
            Ok(raw) => raw,
            Err(err) => {
                eprintln!("cannot read report {}: {err}", from_path.display());
                std::process::exit(1);
            }
        };
        let doc = match parse(&raw) {
            Ok(v) => v,
            Err(err) => {
                eprintln!("report {} is not valid JSON: {err}", from_path.display());
                std::process::exit(1);
            }
        };
        match Report::from_json(&doc) {
            Ok(report) => {
                println!(
                    "loaded {} metrics from {} (workloads skipped)",
                    report.metrics.len(),
                    from_path.display()
                );
                report
            }
            Err(err) => {
                eprintln!("report {}: {err}", from_path.display());
                std::process::exit(1);
            }
        }
    } else {
        let enabled = |section: &str| {
            args.only
                .as_ref()
                .map_or(true, |s| s.iter().any(|o| o == section))
        };
        let mut report = Report::new();
        let total = Instant::now();
        if enabled("codec") {
            run_codec(&mut report, args.quick);
            println!("  codec workloads done");
        }
        // The city macro prices its all-pairs extrapolation with the
        // exchange sim's per-event cost, so `city` implies `sim`.
        let mut per_event_ms = 0.0;
        if enabled("sim") || enabled("city") {
            per_event_ms = run_exchange_sim(&mut report);
            println!("  exchange simulator done");
        }
        if enabled("csi") {
            run_csi_pipeline(&mut report, args.quick);
            println!("  CSI pipeline done");
        }
        if enabled("wardrive") {
            run_wardrive_shard(&mut report);
            println!("  wardrive shard done");
        }
        if enabled("city") {
            run_city_macro(&mut report, per_event_ms);
            println!("  city wardrive macro done");
        }
        if enabled("keystroke") {
            run_keystroke_macro(&mut report);
            println!("  keystroke macro done");
        }
        if enabled("power") {
            run_power_macro(&mut report);
            println!("  power sweep done");
        }
        if enabled("hub") {
            run_sensing_hub_macro(&mut report);
            println!("  sensing hub macro done");
        }
        if enabled("daemon") {
            run_daemon_serving(&mut report);
            println!("  daemon serving macro done");
        }
        println!("all workloads in {:.1}s", total.elapsed().as_secs_f64());
        report
    };

    println!("\n{:<34} {:>14}  unit", "metric", "value");
    for m in &report.metrics {
        println!(
            "{:<34} {:>14.3}  {} [{}]",
            m.name,
            m.value,
            m.unit,
            m.kind.label()
        );
    }

    if args.from.is_none() {
        let json = report.to_json(args.quick, args.label.as_deref());
        let report_path = match polite_wifi_harness::write_json(REPORT_SLUG, &RawJson(&json)) {
            Ok(path) => path,
            Err(err) => {
                eprintln!("failed to write report: {err}");
                std::process::exit(1);
            }
        };
        println!("\n[bench report written to {}]", report_path.display());

        if let Some(out_path) = &args.out {
            if let Err(err) = std::fs::write(out_path, &json) {
                eprintln!("failed to write {}: {err}", out_path.display());
                std::process::exit(1);
            }
            println!("[labelled snapshot written to {}]", out_path.display());
        }

        if args.write_baseline {
            if let Err(err) = std::fs::write(&args.baseline, &json) {
                eprintln!("failed to write baseline: {err}");
                std::process::exit(1);
            }
            println!(
                "[baseline written to {} — commit it]",
                args.baseline.display()
            );
        }
    }

    if args.check {
        let raw = match std::fs::read_to_string(&args.baseline) {
            Ok(raw) => raw,
            Err(err) => {
                eprintln!(
                    "cannot read baseline {}: {err} (generate one with --write-baseline)",
                    args.baseline.display()
                );
                std::process::exit(1);
            }
        };
        let baseline = match parse(&raw) {
            Ok(v) => v,
            Err(err) => {
                eprintln!(
                    "baseline {} is not valid JSON: {err}",
                    args.baseline.display()
                );
                std::process::exit(1);
            }
        };
        match check(
            &baseline,
            &report,
            args.tolerance,
            args.gate_timing,
            args.only.is_some(),
            args.gate_only.as_deref(),
        ) {
            Ok(gated) => {
                println!(
                    "\nbench gate PASSED: {gated} metrics within {}%",
                    args.tolerance
                );
            }
            Err(failures) => {
                eprintln!("\nbench gate FAILED:");
                for f in &failures {
                    eprintln!("  - {f}");
                }
                std::process::exit(1);
            }
        }
    }
}

/// Lets pre-rendered JSON ride through `write_json` (which serialises
/// with the vendored serde) without re-encoding.
struct RawJson<'a>(&'a str);

impl serde::Serialize for RawJson<'_> {
    fn to_value(&self) -> serde_json::Value {
        // The harness writer pretty-prints a Value; hand it the parsed
        // tree so the committed report stays valid JSON.
        raw_to_serde(&parse(self.0).expect("report JSON is well-formed"))
    }
}

fn raw_to_serde(v: &JsonValue) -> serde_json::Value {
    match v {
        JsonValue::Null => serde_json::Value::Null,
        JsonValue::Bool(b) => serde_json::Value::Bool(*b),
        JsonValue::Num(n) => {
            if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 {
                serde_json::Value::UInt(*n as u64)
            } else {
                serde_json::Value::Float(*n)
            }
        }
        JsonValue::Str(s) => serde_json::Value::String(s.clone()),
        JsonValue::Arr(items) => serde_json::Value::Array(items.iter().map(raw_to_serde).collect()),
        JsonValue::Obj(fields) => serde_json::Value::Object(
            fields
                .iter()
                .map(|(k, v)| (k.clone(), raw_to_serde(v)))
                .collect(),
        ),
    }
}
