//! The CSI keystroke/activity attack (paper §4.1, Figure 5).
//!
//! The attacker (an ESP32-class device in a different room, with no key
//! material for the victim's network) sends 150 fake frames per second to
//! the victim tablet and measures the CSI of the returned ACKs. Human
//! activity around the tablet modulates the channel, and the amplitude
//! series of a single subcarrier already separates idle / pickup / hold /
//! typing.

use crate::injector::{FakeFrameInjector, InjectionPlan};
use polite_wifi_frame::{ControlFrame, Frame, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::csi::{CsiChannel, CsiConfig};
use polite_wifi_sensing::keystroke::{
    detect_keystrokes, score_detections, KeystrokeDetectorConfig,
};
use polite_wifi_sensing::{filter, CsiSeries, MotionScript};
use polite_wifi_sim::{FaultProfile, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Configuration of the keystroke-inference attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeAttack {
    /// Fake-frame rate (the paper uses 150/s).
    pub rate_pps: u32,
    /// Ground-truth motion around the victim.
    pub script: MotionScript,
    /// Subcarrier to report (the paper plots 17).
    pub subcarrier: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Channel/device fault profile the scenario runs under.
    pub faults: FaultProfile,
}

impl KeystrokeAttack {
    /// The Figure 5 experiment, verbatim.
    pub fn figure5(seed: u64) -> KeystrokeAttack {
        KeystrokeAttack {
            rate_pps: 150,
            script: MotionScript::figure5(),
            subcarrier: 17,
            seed,
            faults: FaultProfile::Clean,
        }
    }
}

/// Per-phase summary statistics for the reported subcarrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Phase label from the script.
    pub label: String,
    /// Phase boundaries, µs.
    pub start_us: u64,
    /// End, µs.
    pub end_us: u64,
    /// Samples that fell in the phase.
    pub samples: usize,
    /// Mean amplitude.
    pub mean: f64,
    /// Amplitude standard deviation (the Figure 5 separator).
    pub std_dev: f64,
}

/// Everything the attack recovered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeAttackResult {
    /// Fake frames injected.
    pub fakes_sent: u64,
    /// ACKs measured (CSI samples).
    pub acks_measured: u64,
    /// Effective CSI sample rate, Hz.
    pub sample_rate_hz: f64,
    /// Timestamps of the CSI samples, µs.
    pub times_us: Vec<u64>,
    /// Conditioned amplitude series of the chosen subcarrier.
    pub amplitudes: Vec<f64>,
    /// Per-phase statistics.
    pub phase_stats: Vec<PhaseStat>,
    /// Keystroke detection: (hits, misses, false alarms) against the
    /// script's ground truth, within ±tolerance samples.
    pub keystroke_score: (usize, usize, usize),
    /// Number of ground-truth keystrokes.
    pub keystrokes_truth: usize,
}

impl KeystrokeAttack {
    /// Runs the attack end-to-end: simulator → ACK stream → CSI → stats.
    pub fn run(&self) -> KeystrokeAttackResult {
        let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
        let ap_mac: MacAddr = "68:02:b8:00:00:02".parse().unwrap();

        let mut sim = Simulator::new(SimConfig::default(), self.seed);
        let ap = sim.add_node(
            StationConfig::access_point(ap_mac, "PrivateNet"),
            (2.0, 2.0),
        );
        let victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
        sim.station_mut(victim).associate(ap_mac);
        sim.station_mut(ap).associate(victim_mac);
        // The attacker sits in a different room: ~8 m away through the
        // indoor path-loss model.
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 1.0));
        sim.set_monitor(attacker, true);
        sim.install_faults(&self.faults.plan());

        let duration_us = self.script.duration_us();
        let plan = InjectionPlan {
            rate_pps: self.rate_pps,
            ..InjectionPlan::keystroke_stream(victim_mac, duration_us)
        };
        let fakes_sent = FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
        sim.run_until(duration_us + 100_000);

        // Collect the ACK arrival times at the attacker.
        let ack_times: Vec<u64> = sim
            .node(attacker)
            .capture
            .frames()
            .iter()
            .filter(|cf| {
                matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE)
            })
            .map(|cf| cf.ts_us)
            .collect();

        // Sample the CSI channel at each ACK, driven by the ground-truth
        // motion. The channel's AR(1) memory is calibrated near 150 Hz —
        // the rate this attack produces. All ACKs render in one batched
        // pass (bit-identical to the per-ACK loop).
        let intensities: Vec<f64> = ack_times
            .iter()
            .map(|&t| self.script.intensity_at(t))
            .collect();
        let mut channel = CsiChannel::with_config(self.seed, CsiConfig::default());
        let csi = channel.sample_batch(&intensities);
        let mut series = CsiSeries::new();
        for (j, &t) in ack_times.iter().enumerate() {
            series.push(t, csi.snapshot(j));
        }

        let raw = csi.subcarrier_amplitudes(self.subcarrier);
        let amplitudes = filter::condition(&raw);

        // Per-phase stats.
        let mut phase_stats = Vec::new();
        for phase in &self.script.phases {
            let idx: Vec<usize> = series
                .times_us
                .iter()
                .enumerate()
                .filter(|(_, &t)| t >= phase.start_us && t < phase.end_us)
                .map(|(i, _)| i)
                .collect();
            let vals: Vec<f64> = idx.iter().map(|&i| amplitudes[i]).collect();
            let mean = if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            phase_stats.push(PhaseStat {
                label: phase.label.clone(),
                start_us: phase.start_us,
                end_us: phase.end_us,
                samples: vals.len(),
                mean,
                std_dev: polite_wifi_phy::csi::std_dev(&vals),
            });
        }

        // Keystroke detection inside the typing phase.
        let keystroke_score = self.score_keystrokes(&series, &amplitudes);

        KeystrokeAttackResult {
            fakes_sent,
            acks_measured: ack_times.len() as u64,
            sample_rate_hz: series.sample_rate_hz(),
            times_us: series.times_us.clone(),
            amplitudes,
            phase_stats,
            keystroke_score,
            keystrokes_truth: self.script.keystrokes_us.len(),
        }
    }

    fn score_keystrokes(&self, series: &CsiSeries, amplitudes: &[f64]) -> (usize, usize, usize) {
        if self.script.keystrokes_us.is_empty() {
            return (0, 0, 0);
        }
        // Work within the typing phase only.
        let typing = self
            .script
            .phases
            .iter()
            .find(|p| p.label == "typing")
            .expect("script has keystrokes but no typing phase");
        let idx: Vec<usize> = series
            .times_us
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= typing.start_us && t < typing.end_us)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            return (0, self.script.keystrokes_us.len(), 0);
        }
        let window: Vec<f64> = idx.iter().map(|&i| amplitudes[i]).collect();
        // Typing rides on a non-zero base motion, so the burst threshold
        // is gentler than the quiet-scene default.
        let detector = KeystrokeDetectorConfig {
            threshold_factor: 2.2,
            ..KeystrokeDetectorConfig::default()
        };
        let events = detect_keystrokes(&window, &detector);
        // Ground truth, as indices into the typing window.
        let first = idx[0];
        let truth: Vec<usize> = self
            .script
            .keystrokes_us
            .iter()
            .filter_map(|&k| {
                series
                    .times_us
                    .iter()
                    .position(|&t| t >= k)
                    .map(|i| i.saturating_sub(first))
            })
            .collect();
        // Tolerance: half the keystroke spacing in samples.
        let tolerance = (self.rate_pps as usize / 8).max(5);
        score_detections(&events, &truth, tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_sensing::classify::ActivityClass;

    fn result() -> KeystrokeAttackResult {
        KeystrokeAttack::figure5(3).run()
    }

    #[test]
    fn attack_measures_most_acks() {
        let r = result();
        // 150 pps × 45 s = 6750 fakes; the channel is clean, so nearly
        // all elicit measurable ACKs.
        assert_eq!(r.fakes_sent, 6750);
        assert!(
            r.acks_measured as f64 > 0.97 * r.fakes_sent as f64,
            "measured {}/{}",
            r.acks_measured,
            r.fakes_sent
        );
        assert!((140.0..160.0).contains(&r.sample_rate_hz));
    }

    #[test]
    fn figure5_episode_separation() {
        // The paper's qualitative claim, quantified: pickup ≫ typing >
        // hold > idle in subcarrier-17 amplitude variability.
        let r = result();
        let std_of = |label: &str| {
            r.phase_stats
                .iter()
                .filter(|p| p.label == label)
                .map(|p| p.std_dev)
                .fold(0.0, f64::max)
        };
        let idle = std_of("idle");
        let pickup = std_of("pickup");
        let hold = std_of("hold");
        let typing = std_of("typing");
        assert!(pickup > 3.0 * hold, "pickup {pickup} vs hold {hold}");
        assert!(typing > 1.3 * hold, "typing {typing} vs hold {hold}");
        assert!(hold > idle, "hold {hold} vs idle {idle}");
    }

    #[test]
    fn phases_are_populated() {
        let r = result();
        assert_eq!(r.phase_stats.len(), 6);
        for p in &r.phase_stats {
            // ≈150 samples/s × phase length.
            let expected = (p.end_us - p.start_us) as f64 * 150e-6;
            assert!(
                (p.samples as f64) > 0.9 * expected,
                "phase {} has {} samples, expected ≈{}",
                p.label,
                p.samples,
                expected
            );
        }
    }

    #[test]
    fn keystrokes_detectable() {
        let r = result();
        let (hits, misses, fa) = r.keystroke_score;
        assert_eq!(hits + misses, r.keystrokes_truth);
        // The signal is there: most keystrokes produce detectable bursts.
        assert!(
            hits as f64 >= 0.6 * r.keystrokes_truth as f64,
            "only {hits}/{} keystrokes detected ({fa} false alarms)",
            r.keystrokes_truth
        );
    }

    #[test]
    fn activity_classes_recoverable_from_phase_stats() {
        // Sanity: a threshold classifier calibrated on the phase stds
        // maps each phase back to the right class.
        use polite_wifi_sensing::ThresholdClassifier;
        let r = result();
        let labelled: Vec<(ActivityClass, f64)> = r
            .phase_stats
            .iter()
            .filter(|p| p.samples > 0)
            .map(|p| (ActivityClass::from_label(&p.label), p.std_dev))
            .collect();
        let clf = ThresholdClassifier::calibrate(&labelled);
        for (truth, std) in &labelled {
            assert_eq!(clf.classify(*std), *truth, "std {std} misclassified");
        }
    }
}
