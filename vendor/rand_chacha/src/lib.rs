//! Vendored ChaCha8 PRNG (`rand_chacha` stand-in).
//!
//! A faithful ChaCha8 keystream generator (Bernstein's ChaCha with 8
//! rounds, the variant upstream `rand_chacha` exposes as `ChaCha8Rng`),
//! implementing the vendored [`rand`] traits. The keystream is a pure
//! function of the 256-bit seed, so every simulation seeded through this
//! type replays bit-for-bit — the property the whole workspace rests on.
//! No output compatibility with upstream `rand_chacha` word order is
//! promised (the workspace never compares against upstream streams).

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit block counter, zero nonce.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// Block counter (low/high words 12–13 of the state).
    counter: u64,
    /// The current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k", the ChaCha constant.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // nonce
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // A double round: four column rounds + four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn counter_advances_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn uniformish_floats() {
        let mut r = ChaCha8Rng::seed_from_u64(33);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
