//! On-air frame durations and response timeouts.

use crate::band::Band;
use crate::rate::BitRate;

/// Long DSSS PLCP preamble + header (1 Mb/s): 144 + 48 µs.
pub const DSSS_LONG_PREAMBLE_US: u32 = 192;
/// Short DSSS PLCP preamble + header: 72 + 24 µs.
pub const DSSS_SHORT_PREAMBLE_US: u32 = 96;
/// OFDM preamble (16 µs) + SIGNAL symbol (4 µs).
pub const OFDM_PREAMBLE_US: u32 = 20;
/// OFDM symbol duration.
pub const OFDM_SYMBOL_US: u32 = 4;
/// OFDM PPDU service bits prepended to the PSDU.
pub const OFDM_SERVICE_BITS: u32 = 16;
/// OFDM tail bits appended to the PSDU.
pub const OFDM_TAIL_BITS: u32 = 6;

/// Microseconds needed to transmit `psdu_len` bytes (MPDU incl. FCS) at
/// `rate`, including the PLCP preamble/header.
pub fn frame_duration_us(psdu_len: usize, rate: BitRate, short_preamble: bool) -> u32 {
    let bits = psdu_len as u64 * 8;
    if rate.is_dsss() {
        let preamble = if short_preamble && rate != BitRate::Mbps1 {
            DSSS_SHORT_PREAMBLE_US
        } else {
            DSSS_LONG_PREAMBLE_US
        };
        // Payload time, rounded up to a whole microsecond.
        let payload_us = ((bits * 1_000_000).div_ceil(rate.bps())) as u32;
        preamble + payload_us
    } else {
        let n_dbps = rate
            .ofdm_bits_per_symbol()
            .expect("non-DSSS rates are OFDM") as u64;
        let total_bits = OFDM_SERVICE_BITS as u64 + bits + OFDM_TAIL_BITS as u64;
        let symbols = total_bits.div_ceil(n_dbps) as u32;
        OFDM_PREAMBLE_US + symbols * OFDM_SYMBOL_US
    }
}

/// Duration of an ACK (14-byte PSDU) at the response rate for `rate`.
pub fn ack_duration_us(eliciting_rate: BitRate, short_preamble: bool) -> u32 {
    frame_duration_us(14, eliciting_rate.response_rate(), short_preamble)
}

/// Duration of a CTS (14-byte PSDU) at the response rate for `rate`.
pub fn cts_duration_us(eliciting_rate: BitRate, short_preamble: bool) -> u32 {
    // CTS and ACK have identical length; the same arithmetic applies.
    ack_duration_us(eliciting_rate, short_preamble)
}

/// The ACK timeout: how long a transmitter waits before declaring the
/// frame lost and retransmitting. The standard's timeout ends when the
/// ACK's *preamble* should have been detected (SIFS + slot + RX-start
/// delay); our event-driven radio delivers frames at their end, so the
/// timeout here covers the complete ACK reception instead — behaviourally
/// identical for retry decisions.
pub fn ack_timeout_us(band: Band, eliciting_rate: BitRate) -> u32 {
    band.sifs_us() + band.slot_us() + ack_duration_us(eliciting_rate, false)
}

/// The Duration/ID (NAV) value a data frame should carry: time to the end
/// of the expected ACK (SIFS + ACK duration).
pub fn nav_for_data_us(band: Band, rate: BitRate, short_preamble: bool) -> u16 {
    let v = band.sifs_us() + ack_duration_us(rate, short_preamble);
    v.min(32767) as u16
}

/// The NAV an RTS should carry: CTS + data + ACK + 3 × SIFS. We expose it
/// for fake-RTS crafting; the attacker typically *minimises* it instead to
/// avoid stalling the channel it is measuring on.
pub fn nav_for_rts_us(
    band: Band,
    data_psdu_len: usize,
    rate: BitRate,
    short_preamble: bool,
) -> u16 {
    let v = 3 * band.sifs_us()
        + cts_duration_us(rate, short_preamble)
        + frame_duration_us(data_psdu_len, rate, short_preamble)
        + ack_duration_us(rate, short_preamble);
    v.min(32767) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_frame_at_1mbps() {
        // 28-byte PSDU at 1 Mb/s: 192 µs preamble + 224 µs payload.
        assert_eq!(frame_duration_us(28, BitRate::Mbps1, false), 416);
    }

    #[test]
    fn ack_at_1mbps() {
        // 14 bytes at 1 Mb/s: 192 + 112 = 304 µs.
        assert_eq!(frame_duration_us(14, BitRate::Mbps1, false), 304);
    }

    #[test]
    fn short_preamble_only_above_1mbps() {
        assert_eq!(frame_duration_us(14, BitRate::Mbps1, true), 304);
        assert_eq!(frame_duration_us(14, BitRate::Mbps2, true), 96 + 56);
    }

    #[test]
    fn ofdm_null_frame_at_6mbps() {
        // 28 bytes: service 16 + 224 + tail 6 = 246 bits; 246/24 = 10.25
        // → 11 symbols; 20 + 44 = 64 µs.
        assert_eq!(frame_duration_us(28, BitRate::Mbps6, false), 64);
    }

    #[test]
    fn ofdm_ack_at_24mbps() {
        // 14 bytes: 16 + 112 + 6 = 134 bits; ceil(134/96) = 2 symbols;
        // 20 + 8 = 28 µs.
        assert_eq!(frame_duration_us(14, BitRate::Mbps24, false), 28);
    }

    #[test]
    fn ack_duration_uses_response_rate() {
        // Data at 54 → ACK at 24 Mb/s → 28 µs.
        assert_eq!(ack_duration_us(BitRate::Mbps54, false), 28);
        // Data at 11 Mb/s → ACK at 2 Mb/s: 192 + 56 = 248 µs.
        assert_eq!(ack_duration_us(BitRate::Mbps11, false), 248);
    }

    #[test]
    fn cck_rounding_is_ceiling() {
        // 14 bytes at 5.5 Mb/s = 112/5.5 = 20.36 → 21 µs payload.
        assert_eq!(frame_duration_us(14, BitRate::Mbps5_5, false), 192 + 21);
    }

    #[test]
    fn ack_timeout_exceeds_sifs() {
        for band in [Band::Ghz2, Band::Ghz5] {
            for rate in BitRate::ALL {
                assert!(ack_timeout_us(band, rate) > band.sifs_us());
            }
        }
    }

    #[test]
    fn nav_covers_sifs_plus_ack() {
        let nav = nav_for_data_us(Band::Ghz2, BitRate::Mbps1, false);
        assert_eq!(nav as u32, 10 + 304);
    }

    #[test]
    fn rts_nav_larger_than_data_nav() {
        let rts = nav_for_rts_us(Band::Ghz2, 1500, BitRate::Mbps54, false);
        let data = nav_for_data_us(Band::Ghz2, BitRate::Mbps54, false);
        assert!(rts > data);
    }

    #[test]
    fn duration_monotone_in_length() {
        for rate in BitRate::ALL {
            let mut last = 0;
            for len in [0usize, 14, 28, 100, 1500] {
                let d = frame_duration_us(len, rate, false);
                assert!(d >= last);
                last = d;
            }
        }
    }
}
