//! A1 — ablation: what if devices *did* validate before ACKing?
//!
//! DESIGN.md §5's first ablation, run live: a hypothetical MAC that
//! delays its ACK by the WPA2 decode time (200–700 µs). The transmitter's
//! ACK timeout expires long before the validated ACK arrives, so every
//! frame is retransmitted to the retry limit and finally reported lost —
//! breaking WiFi for *legitimate* traffic, which is exactly why the
//! standard cannot adopt validate-then-ACK. The four MAC variants are
//! independent scenarios, fanned over the harness worker pool.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_harness::{Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_mac::{Behavior, StationConfig};
use polite_wifi_phy::rate::BitRate;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    decode_us: Option<u32>,
    frames_offered: u64,
    transmissions: u64,
    confirmed: u64,
    reported_lost: u64,
    retry_amplification: f64,
}

fn run_case(
    decode_us: Option<u32>,
    seed: u64,
    faults: polite_wifi_sim::FaultProfile,
) -> (AblationRow, polite_wifi_obs::Obs) {
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let peer_mac: MacAddr = "02:00:00:00:00:42".parse().unwrap();

    let mut sb = ScenarioBuilder::new()
        .duration_us(60_000_000)
        .faults(faults);
    let mut cfg = StationConfig::client(victim_mac);
    if let Some(us) = decode_us {
        cfg.behavior = Behavior::hypothetical_validating(us);
    }
    let victim = sb.station(cfg, (0.0, 0.0));
    // A *legitimate* peer this time — the ablation hurts friends, not
    // just attackers.
    let peer = sb.client(peer_mac, (4.0, 0.0));
    sb.associate(victim, peer_mac);
    let mut scenario = sb.build_with_seed(seed);

    let frames_offered = 50u64;
    for i in 0..frames_offered {
        scenario.sim.inject(
            i * 20_000,
            peer,
            builder::protected_qos_data(victim_mac, peer_mac, peer_mac, i as u16, 200),
            BitRate::Mbps24,
        );
    }
    let sim = scenario.run();

    let node = sim.node(peer);
    let row = AblationRow {
        decode_us,
        frames_offered,
        transmissions: node.tx_count,
        confirmed: node.acks_received,
        reported_lost: node.tx_failures,
        retry_amplification: node.tx_count as f64 / frames_offered as f64,
    };
    (row, scenario.sim.take_obs())
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let seed = exp.seed();
    let faults = exp.args().faults;
    let variants = [None, Some(200), Some(450), Some(700)];
    let results = exp
        .runner()
        .run_indexed(variants.len(), |i| run_case(variants[i], seed, faults));
    let mut rows = Vec::with_capacity(results.len());
    for (row, obs) in results {
        exp.absorb_obs(obs);
        rows.push(row);
    }
    println!(
        "\n{:<26} {:>8} {:>8} {:>10} {:>8} {:>8}",
        "MAC design", "offered", "tx'd", "confirmed", "lost", "amplif."
    );
    for r in &rows {
        let label = match r.decode_us {
            None => "real 802.11 (ACK at SIFS)".to_string(),
            Some(us) => format!("validate first ({us} µs)"),
        };
        println!(
            "{:<26} {:>8} {:>8} {:>10} {:>8} {:>7.1}x",
            label,
            r.frames_offered,
            r.transmissions,
            r.confirmed,
            r.reported_lost,
            r.retry_amplification
        );
        exp.metrics
            .record("retry_amplification", r.retry_amplification);
    }

    println!();
    compare(
        "compliant MAC: one transmission per frame, nothing lost",
        "-",
        &format!(
            "{} tx, {} lost",
            rows[0].transmissions, rows[0].reported_lost
        ),
    );
    compare(
        "validating MAC: retry amplification",
        "ACK never in time → retries",
        &format!("{:.1}x the airtime", rows[1].retry_amplification),
    );
    compare(
        "validating MAC: frames reported lost",
        "most (late ACKs mis-credit retries)",
        &format!("{}/50", rows[1].reported_lost),
    );
    println!(
        "\nNote: the 'confirmed' column counts late ACKs the transmitter\n\
         cannot distinguish from timely ones — they arrive during *later*\n\
         retries and get mis-credited, which is itself a correctness bug\n\
         a validating MAC would introduce."
    );

    if faults.is_clean() {
        // Compliant baseline: clean.
        assert_eq!(rows[0].transmissions, rows[0].frames_offered);
        assert_eq!(rows[0].confirmed, 50);
        assert_eq!(rows[0].reported_lost, 0);
        // Every validating variant: massive retry amplification and most
        // frames eventually declared lost despite having been received.
        for r in &rows[1..] {
            assert!(r.retry_amplification > 5.0, "{r:?}");
            assert!(
                r.reported_lost * 10 >= r.frames_offered * 8,
                "expected ≥80% reported lost, got {}/{}",
                r.reported_lost,
                r.frames_offered
            );
        }
    }
    exp.finish_with_status(&spec.slug, &rows)
}
