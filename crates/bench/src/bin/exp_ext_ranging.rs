//! X2 — extension: RSSI ranging to an unassociated victim (the Wi-Peep
//! direction). The attacker elicits as many ACKs as it wants, so the
//! estimate sharpens with sample count — quantified here.

use polite_wifi_bench::{compare, header, write_json};
use polite_wifi_core::{estimate_range, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_frame::MacAddr;
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{SimConfig, Simulator};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct RangeRow {
    true_distance_m: f64,
    samples: usize,
    median_rssi_dbm: f64,
    estimated_m: f64,
    relative_error: f64,
}

fn measure(true_distance: f64, rate_pps: u32, duration_us: u64, seed: u64) -> RangeRow {
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), seed);
    let _v = sim.add_node(StationConfig::client(victim_mac), (true_distance, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (0.0, 0.0));
    sim.set_monitor(attacker, true);
    let plan = InjectionPlan {
        victim: victim_mac,
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::NullData,
        rate_pps,
        start_us: 0,
        duration_us,
        bitrate: BitRate::Mbps1,
    };
    FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
    sim.run_until(duration_us + 500_000);
    let model = sim.path_loss();
    let est = estimate_range(&sim.node(attacker).capture, MacAddr::FAKE, 20.0, &model)
        .expect("ACKs collected");
    RangeRow {
        true_distance_m: true_distance,
        samples: est.samples,
        median_rssi_dbm: est.median_rssi_dbm,
        estimated_m: est.distance_m,
        relative_error: (est.distance_m - true_distance).abs() / true_distance,
    }
}

fn main() {
    header(
        "X2 (extension): RSSI ranging to an unassociated victim",
        "follow-up direction (Wi-Peep); enabled by unlimited ACK elicitation",
    );

    println!("\n{:>8} {:>8} {:>10} {:>10} {:>8}", "true m", "samples", "RSSI dBm", "est. m", "err %");
    let mut rows = Vec::new();
    for (d, seed) in [(2.0, 1u64), (5.0, 2), (10.0, 3), (20.0, 4)] {
        let row = measure(d, 200, 3_000_000, seed);
        println!(
            "{:>8.1} {:>8} {:>10.1} {:>10.2} {:>7.1}%",
            row.true_distance_m,
            row.samples,
            row.median_rssi_dbm,
            row.estimated_m,
            row.relative_error * 100.0
        );
        rows.push(row);
    }

    // More elicited samples → tighter estimate (the Polite WiFi lever).
    let short = measure(10.0, 50, 400_000, 9); // ~20 samples
    let long = measure(10.0, 200, 10_000_000, 9); // ~2000 samples
    println!();
    compare(
        "estimate sharpens with elicited sample count",
        "-",
        &format!(
            "{:.0}% err @ {} samples vs {:.0}% err @ {} samples",
            short.relative_error * 100.0,
            short.samples,
            long.relative_error * 100.0,
            long.samples
        ),
    );
    compare(
        "ordering preserved across distances",
        "-",
        if rows.windows(2).all(|w| w[1].estimated_m > w[0].estimated_m) { "yes" } else { "no" },
    );

    assert!(rows.iter().all(|r| r.relative_error < 0.45), "{rows:?}");
    assert!(rows.windows(2).all(|w| w[1].estimated_m > w[0].estimated_m));
    write_json("ext_ranging", &rows);
}
