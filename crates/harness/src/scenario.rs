//! Declarative scenario construction.
//!
//! A [`ScenarioBuilder`] records a population (stations with positions
//! and roles), a topology (associations, monitor taps, velocities), a
//! base seed, and a duration — then stamps out fresh deterministic
//! [`Simulator`]s from that recipe. Because the recipe is immutable
//! after declaration, one builder can stamp a simulator per trial with
//! per-trial derived seeds: the foundation of the Monte-Carlo runner.

use polite_wifi_frame::MacAddr;
use polite_wifi_mac::StationConfig;
use polite_wifi_sim::{FaultProfile, NodeId, SimConfig, Simulator};

/// Topology operations applied after node creation.
#[derive(Debug, Clone)]
enum PostOp {
    Monitor(NodeId),
    Associate(NodeId, MacAddr),
    Velocity(NodeId, (f64, f64)),
    Retries(NodeId, bool),
}

/// A reusable recipe for building simulators.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: SimConfig,
    seed: u64,
    duration_us: u64,
    faults: FaultProfile,
    nodes: Vec<(StationConfig, (f64, f64))>,
    ops: Vec<PostOp>,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder::new()
    }
}

impl ScenarioBuilder {
    pub fn new() -> ScenarioBuilder {
        ScenarioBuilder {
            config: SimConfig::default(),
            seed: 7,
            duration_us: 1_000_000,
            faults: FaultProfile::Clean,
            nodes: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Overrides the radio environment.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the base seed [`build`](Self::build) uses.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how long [`Scenario::run`] advances virtual time.
    pub fn duration_us(mut self, duration_us: u64) -> Self {
        self.duration_us = duration_us;
        self
    }

    /// Applies a chaos profile to every simulator this builder stamps
    /// out. [`FaultProfile::Clean`] (the default) installs nothing, so
    /// fault-free recipes stay byte-identical to pre-fault builds.
    pub fn faults(mut self, faults: FaultProfile) -> Self {
        self.faults = faults;
        self
    }

    /// Adds a station from an explicit config (escape hatch for custom
    /// behaviours). Returns the id the node will have in every simulator
    /// this builder stamps out.
    pub fn station(&mut self, cfg: StationConfig, position: (f64, f64)) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push((cfg, position));
        id
    }

    /// Adds a 2.4 GHz client.
    pub fn client(&mut self, mac: MacAddr, position: (f64, f64)) -> NodeId {
        self.station(StationConfig::client(mac), position)
    }

    /// Adds a beaconing access point.
    pub fn access_point(&mut self, mac: MacAddr, ssid: &str, position: (f64, f64)) -> NodeId {
        self.station(StationConfig::access_point(mac, ssid), position)
    }

    /// Adds a monitor-mode capture station (the attacker's injector).
    pub fn monitor(&mut self, mac: MacAddr, position: (f64, f64)) -> NodeId {
        let id = self.station(StationConfig::client(mac), position);
        self.ops.push(PostOp::Monitor(id));
        id
    }

    /// Marks an existing station as a monitor-mode capture tap.
    pub fn set_monitor(&mut self, id: NodeId) -> &mut Self {
        self.ops.push(PostOp::Monitor(id));
        self
    }

    /// Associates a station to a peer MAC (one direction).
    pub fn associate(&mut self, id: NodeId, peer: MacAddr) -> &mut Self {
        self.ops.push(PostOp::Associate(id, peer));
        self
    }

    /// Associates a client and an AP with each other (both directions —
    /// the usual "already joined" starting state).
    pub fn link(&mut self, client: NodeId, ap: NodeId) -> &mut Self {
        let client_mac = self.nodes[client.0].0.mac;
        let ap_mac = self.nodes[ap.0].0.mac;
        self.ops.push(PostOp::Associate(client, ap_mac));
        self.ops.push(PostOp::Associate(ap, client_mac));
        self
    }

    /// Gives a station a constant velocity (metres/second).
    pub fn velocity(&mut self, id: NodeId, velocity: (f64, f64)) -> &mut Self {
        self.ops.push(PostOp::Velocity(id, velocity));
        self
    }

    /// Enables or disables MAC-layer retries for a station.
    pub fn retries(&mut self, id: NodeId, enabled: bool) -> &mut Self {
        self.ops.push(PostOp::Retries(id, enabled));
        self
    }

    /// Number of declared stations.
    pub fn population(&self) -> usize {
        self.nodes.len()
    }

    /// Stamps out a simulator with the builder's own seed.
    pub fn build(&self) -> Scenario {
        self.build_with_seed(self.seed)
    }

    /// Stamps out a simulator with an explicit (e.g. per-trial derived)
    /// seed. The recipe is not consumed: call once per trial.
    pub fn build_with_seed(&self, seed: u64) -> Scenario {
        let mut sim = Simulator::new(self.config, seed);
        for (cfg, position) in &self.nodes {
            sim.add_node(cfg.clone(), *position);
        }
        for op in &self.ops {
            match *op {
                PostOp::Monitor(id) => sim.set_monitor(id, true),
                PostOp::Associate(id, peer) => sim.station_mut(id).associate(peer),
                PostOp::Velocity(id, v) => sim.set_velocity(id, v),
                PostOp::Retries(id, enabled) => sim.set_retries(id, enabled),
            }
        }
        sim.install_faults(&self.faults.plan());
        Scenario {
            sim,
            seed,
            duration_us: self.duration_us,
        }
    }
}

/// A built, ready-to-run simulation plus its provenance.
pub struct Scenario {
    /// The simulator; experiment code drives it directly for anything
    /// the builder doesn't model (injection plans, retunes, joins).
    pub sim: Simulator,
    /// The seed this instance was built with.
    pub seed: u64,
    /// Declared duration for [`run`](Self::run).
    pub duration_us: u64,
}

impl Scenario {
    /// Runs the declared duration and returns the simulator for
    /// inspection.
    pub fn run(&mut self) -> &mut Simulator {
        let until = self.duration_us;
        self.sim.run_until(until);
        &mut self.sim
    }

    /// Feeds a node's radio-state accounting into the simulator's
    /// observability scope as `<prefix>.{sleep,idle,rx,tx}_us` dwell
    /// histograms (via `polite_wifi_power::observe`), so the per-trial
    /// snapshot the harness absorbs carries the energy story too.
    pub fn observe_activity(&mut self, id: NodeId, prefix: &str) {
        let totals = self.sim.activity_totals(id);
        let durations = polite_wifi_power::StateDurations {
            sleep_us: totals.sleep_us,
            idle_us: totals.idle_us,
            rx_us: totals.rx_us,
            tx_us: totals.tx_us,
        };
        polite_wifi_power::observe::record_state_durations(self.sim.obs_mut(), prefix, &durations);
    }

    /// Taps a node's radio-state accounting into a metrics ledger as
    /// `<prefix>_{sleep,idle,rx,tx}_us` samples (the energy model's
    /// inputs).
    pub fn tap_activity(
        &self,
        id: NodeId,
        ledger: &mut crate::ledger::MetricsLedger,
        prefix: &str,
    ) {
        let totals = self.sim.activity_totals(id);
        ledger.record(&format!("{prefix}_sleep_us"), totals.sleep_us as f64);
        ledger.record(&format!("{prefix}_idle_us"), totals.idle_us as f64);
        ledger.record(&format!("{prefix}_rx_us"), totals.rx_us as f64);
        ledger.record(&format!("{prefix}_tx_us"), totals.tx_us as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::builder;
    use polite_wifi_phy::rate::BitRate;

    #[test]
    fn ids_are_assigned_in_declaration_order() {
        let mut b = ScenarioBuilder::new();
        let ap = b.access_point("68:02:b8:00:00:01".parse().unwrap(), "Net", (0.0, 0.0));
        let client = b.client("f2:6e:0b:11:22:33".parse().unwrap(), (3.0, 0.0));
        let tap = b.monitor(MacAddr::FAKE, (5.0, 0.0));
        assert_eq!((ap.0, client.0, tap.0), (0, 1, 2));
        assert_eq!(b.population(), 3);

        let s = b.build();
        assert_eq!(s.sim.node_count(), 3);
        assert!(s.sim.node(tap).monitor);
    }

    #[test]
    fn same_recipe_same_seed_is_reproducible() {
        let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
        let mut b = ScenarioBuilder::new();
        let ap = b.access_point("68:02:b8:00:00:01".parse().unwrap(), "Net", (2.0, 0.0));
        let victim = b.client(victim_mac, (0.0, 0.0));
        let attacker = b.monitor(MacAddr::FAKE, (6.0, 0.0));
        b.link(victim, ap);

        let run = |seed: u64| {
            let mut s = b.build_with_seed(seed);
            let fake = builder::fake_null_frame(victim_mac, MacAddr::FAKE);
            s.sim.inject(10_000, attacker, fake, BitRate::Mbps1);
            s.sim.run_until(200_000);
            (
                s.sim.station(victim).stats.acks_sent,
                s.sim.node(attacker).capture.len(),
            )
        };
        assert_eq!(run(5), run(5));
        // And the victim does ACK the stranger (the paper's core claim).
        assert!(run(5).0 >= 1);
    }
}
