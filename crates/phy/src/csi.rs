//! Channel State Information (CSI) with motion-driven dynamics.
//!
//! This is the synthetic stand-in for the ESP32 CSI measurements of
//! Section 4.1 / Figure 5. The channel is a tapped-delay-line multipath
//! model; the frequency response across OFDM subcarriers is
//!
//! ```text
//! H[k] = Σᵢ (aᵢ + sᵢ(t)) · e^(−j2π·fₖ·τᵢ)
//! ```
//!
//! where `aᵢ` are static tap gains (the room) and `sᵢ(t)` are scattered
//! components driven by human motion: an AR(1) process whose innovation is
//! scaled by the instantaneous *motion intensity* in `[0, 1]`. With
//! intensity 0 the response is rock-stable (plus measurement noise), which
//! is exactly the paper's "tablet on the ground" segment; picking the
//! device up (intensity ≈ 1) produces large swings; typing produces
//! mid-scale fluctuations.

use crate::complex::Complex;
use crate::fading::cn;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Number of usable subcarriers reported for a legacy 20 MHz channel
/// (as the ESP32 does: 52 data + 4 pilots).
pub const DEFAULT_SUBCARRIERS: usize = 56;

/// The amplitude/phase of every subcarrier at one instant — one row of
/// Figure 5 per subcarrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsiSnapshot {
    /// Per-subcarrier amplitude (linear).
    pub amplitudes: Vec<f64>,
    /// Per-subcarrier phase in radians.
    pub phases: Vec<f64>,
}

impl CsiSnapshot {
    /// Number of subcarriers.
    pub fn num_subcarriers(&self) -> usize {
        self.amplitudes.len()
    }

    /// Amplitude of one subcarrier (the paper plots subcarrier 17).
    pub fn amplitude(&self, subcarrier: usize) -> f64 {
        self.amplitudes[subcarrier]
    }
}

/// A flat structure-of-arrays batch of CSI snapshots — the batched
/// sensing pipeline's native representation (DESIGN.md §12).
///
/// Layout is sample-major: element `s * subcarriers + k` is subcarrier
/// `k` of sample `s`, matching the order the channel generates values
/// in, so [`CsiChannel::sample_batch`] writes it with no scatter.
/// Values are bit-for-bit the ones the equivalent sequence of
/// [`CsiChannel::sample`] calls would have produced.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CsiBatch {
    /// Subcarriers per sample.
    pub subcarriers: usize,
    /// Per-subcarrier amplitudes, sample-major.
    pub amplitudes: Vec<f64>,
    /// Per-subcarrier phases, sample-major.
    pub phases: Vec<f64>,
}

impl CsiBatch {
    /// An empty batch with capacity for `samples` snapshots.
    pub fn with_capacity(subcarriers: usize, samples: usize) -> CsiBatch {
        CsiBatch {
            subcarriers,
            amplitudes: Vec::with_capacity(subcarriers * samples),
            phases: Vec::with_capacity(subcarriers * samples),
        }
    }

    /// Number of snapshots in the batch.
    pub fn len(&self) -> usize {
        self.amplitudes
            .len()
            .checked_div(self.subcarriers)
            .unwrap_or(0)
    }

    /// True when the batch holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.amplitudes.is_empty()
    }

    /// Amplitude of one (sample, subcarrier) cell.
    pub fn amplitude(&self, sample: usize, subcarrier: usize) -> f64 {
        self.amplitudes[sample * self.subcarriers + subcarrier]
    }

    /// Copies one sample out as an AoS [`CsiSnapshot`].
    pub fn snapshot(&self, sample: usize) -> CsiSnapshot {
        let lo = sample * self.subcarriers;
        let hi = lo + self.subcarriers;
        CsiSnapshot {
            amplitudes: self.amplitudes[lo..hi].to_vec(),
            phases: self.phases[lo..hi].to_vec(),
        }
    }

    /// Gathers the amplitude time series of one subcarrier (a strided
    /// column of the batch) into a contiguous row.
    pub fn subcarrier_amplitudes(&self, subcarrier: usize) -> Vec<f64> {
        assert!(subcarrier < self.subcarriers, "subcarrier out of range");
        self.amplitudes
            .chunks_exact(self.subcarriers)
            .map(|row| row[subcarrier])
            .collect()
    }

    /// Appends another batch (same subcarrier count) to this one.
    pub fn extend(&mut self, other: &CsiBatch) {
        assert_eq!(self.subcarriers, other.subcarriers, "subcarrier mismatch");
        self.amplitudes.extend_from_slice(&other.amplitudes);
        self.phases.extend_from_slice(&other.phases);
    }
}

/// Configuration of the synthetic CSI channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsiConfig {
    /// Number of OFDM subcarriers to report.
    pub subcarriers: usize,
    /// Number of multipath taps.
    pub taps: usize,
    /// AR(1) memory of the scattered components, calibrated for ~150 Hz
    /// sampling (the paper's fake-frame rate).
    pub rho: f64,
    /// Scale of motion-driven scattering relative to the static taps.
    pub scatter_scale: f64,
    /// Std of additive measurement noise on each subcarrier amplitude.
    pub noise_std: f64,
}

impl Default for CsiConfig {
    fn default() -> Self {
        CsiConfig {
            subcarriers: DEFAULT_SUBCARRIERS,
            taps: 8,
            rho: 0.9,
            scatter_scale: 0.5,
            noise_std: 0.01,
        }
    }
}

/// A stateful CSI channel between one attacker and one victim.
///
/// Call [`CsiChannel::sample`] once per received ACK, passing the motion
/// intensity at that instant; the returned snapshot is what the attacker's
/// radio would report.
#[derive(Debug, Clone)]
pub struct CsiChannel {
    config: CsiConfig,
    rng: ChaCha8Rng,
    /// Static tap gains — the room's geometry.
    static_taps: Vec<Complex>,
    /// Motion-driven scattered components, AR(1)-evolved.
    scatter: Vec<Complex>,
    /// Tap delays in units of the sample period (fractional allowed).
    delays: Vec<f64>,
    /// Precomputed subcarrier rotations `e^(−j2π·fₖ·τᵢ)`, row-major
    /// `[subcarrier][tap]`. Delays and the subcarrier grid are fixed at
    /// construction, so the per-sample sin/cos of the original scalar
    /// loop folds into this table — values are bit-identical.
    rot: Vec<Complex>,
    /// Per-tap gain scratch (static + scatter), refreshed each sample so
    /// the subcarrier loop reads a flat array instead of re-adding.
    gains: Vec<Complex>,
}

impl CsiChannel {
    /// Builds a channel with the default configuration.
    pub fn new(seed: u64) -> CsiChannel {
        CsiChannel::with_config(seed, CsiConfig::default())
    }

    /// Builds a channel with an explicit configuration.
    pub fn with_config(seed: u64, config: CsiConfig) -> CsiChannel {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut static_taps = Vec::with_capacity(config.taps);
        let mut delays = Vec::with_capacity(config.taps);
        for i in 0..config.taps {
            // Exponentially decaying power-delay profile.
            let power = (-(i as f64) / 3.0).exp();
            static_taps.push(cn(&mut rng, (power / 2.0).sqrt()));
            delays.push(i as f64 + 0.3 * (i as f64).sin());
        }
        // Normalise so the mean per-subcarrier power is about 1.
        let total: f64 = static_taps.iter().map(|t| t.norm_sq()).sum();
        let scale = (1.0 / total.max(1e-9)).sqrt();
        for t in &mut static_taps {
            *t = t.scale(scale);
        }
        let scatter = vec![Complex::ZERO; config.taps];
        let n = config.subcarriers;
        let mut rot = Vec::with_capacity(n * config.taps);
        for k in 0..n {
            // Normalised subcarrier frequency in [-0.5, 0.5) — the same
            // expression the per-sample loop used before the table.
            let fk = (k as f64 - n as f64 / 2.0) / n as f64;
            for &delay in &delays {
                rot.push(Complex::from_polar(
                    1.0,
                    -2.0 * std::f64::consts::PI * fk * delay,
                ));
            }
        }
        CsiChannel {
            config,
            rng,
            static_taps,
            scatter,
            delays,
            rot,
            gains: vec![Complex::ZERO; config.taps],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CsiConfig {
        &self.config
    }

    /// The multipath tap delays, in sample periods.
    pub fn tap_delays(&self) -> &[f64] {
        &self.delays
    }

    /// Evolves the scattered components by one sample interval: decay
    /// toward zero, excited by motion-scaled innovations.
    fn advance(&mut self, motion_intensity: f64) {
        let m = motion_intensity.clamp(0.0, 1.0);
        let cfg = self.config;
        let innovation_sigma = cfg.scatter_scale * (1.0 - cfg.rho * cfg.rho).sqrt();
        for (i, s) in self.scatter.iter_mut().enumerate() {
            let tap_weight = self.static_taps[i].abs().max(0.05);
            let drive = cn(&mut self.rng, innovation_sigma * tap_weight * m);
            *s = s.scale(cfg.rho) + drive;
        }
        for (g, (st, sc)) in self
            .gains
            .iter_mut()
            .zip(self.static_taps.iter().zip(&self.scatter))
        {
            *g = *st + *sc;
        }
    }

    /// Renders the current channel state (plus fresh measurement noise)
    /// into per-subcarrier amplitude/phase slices of length
    /// `config.subcarriers`.
    fn render_into(&mut self, amplitudes: &mut [f64], phases: &mut [f64]) {
        let n = self.config.subcarriers;
        let taps = self.config.taps;
        let noise_std = self.config.noise_std;
        debug_assert_eq!(amplitudes.len(), n);
        for k in 0..n {
            let rot_row = &self.rot[k * taps..(k + 1) * taps];
            let mut h = Complex::ZERO;
            for (gain, rot) in self.gains.iter().zip(rot_row) {
                h += *gain * *rot;
            }
            let noise = cn(&mut self.rng, noise_std);
            let observed = h + noise;
            amplitudes[k] = observed.abs();
            phases[k] = observed.arg();
        }
    }

    /// Advances the channel by one sample interval under `motion_intensity`
    /// in `[0, 1]` and returns the CSI the receiver would measure.
    pub fn sample(&mut self, motion_intensity: f64) -> CsiSnapshot {
        let n = self.config.subcarriers;
        let mut amplitudes = vec![0.0; n];
        let mut phases = vec![0.0; n];
        self.advance(motion_intensity);
        self.render_into(&mut amplitudes, &mut phases);
        CsiSnapshot { amplitudes, phases }
    }

    /// Advances the channel once per entry of `intensities` and returns
    /// all snapshots as one flat SoA [`CsiBatch`].
    ///
    /// RNG draws, evolution, and float operations happen in exactly the
    /// order the equivalent [`CsiChannel::sample`] loop would perform
    /// them, so the batch is bit-for-bit the AoS sequence — pinned by
    /// the `sample_batch_matches_sample_loop` proptest.
    pub fn sample_batch(&mut self, intensities: &[f64]) -> CsiBatch {
        let n = self.config.subcarriers;
        let mut batch = CsiBatch {
            subcarriers: n,
            amplitudes: vec![0.0; n * intensities.len()],
            phases: vec![0.0; n * intensities.len()],
        };
        for (s, &m) in intensities.iter().enumerate() {
            self.advance(m);
            let lo = s * n;
            self.render_into(
                &mut batch.amplitudes[lo..lo + n],
                &mut batch.phases[lo..lo + n],
            );
        }
        batch
    }

    /// Convenience: samples `n` snapshots at a constant motion intensity
    /// and returns one subcarrier's amplitude series.
    pub fn amplitude_series(
        &mut self,
        n: usize,
        motion_intensity: f64,
        subcarrier: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| self.sample(motion_intensity).amplitude(subcarrier))
            .collect()
    }
}

/// Sample standard deviation, shared by tests and the sensing crate's
/// calibration checks.
pub fn std_dev(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let mean = series.iter().sum::<f64>() / series.len() as f64;
    let var =
        series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (series.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_configured_subcarriers() {
        let mut ch = CsiChannel::new(1);
        let s = ch.sample(0.0);
        assert_eq!(s.num_subcarriers(), DEFAULT_SUBCARRIERS);
        assert_eq!(s.amplitudes.len(), s.phases.len());
    }

    #[test]
    fn idle_channel_is_stable() {
        let mut ch = CsiChannel::new(2);
        let series = ch.amplitude_series(300, 0.0, 17);
        let sd = std_dev(&series);
        assert!(sd < 0.05, "idle std {sd}");
    }

    #[test]
    fn motion_causes_large_fluctuations() {
        let mut ch = CsiChannel::new(3);
        // Settle, then compare idle vs full motion.
        let idle = std_dev(&ch.amplitude_series(300, 0.0, 17));
        let moving = std_dev(&ch.amplitude_series(300, 1.0, 17));
        assert!(
            moving > 5.0 * idle,
            "moving {moving} should dwarf idle {idle}"
        );
    }

    #[test]
    fn fluctuation_scales_with_intensity() {
        // The property Figure 5 depends on: pickup > typing > hold > idle.
        let mut ch = CsiChannel::new(4);
        let idle = std_dev(&ch.amplitude_series(400, 0.0, 17));
        let hold = std_dev(&ch.amplitude_series(400, 0.1, 17));
        let typing = std_dev(&ch.amplitude_series(400, 0.45, 17));
        let pickup = std_dev(&ch.amplitude_series(400, 1.0, 17));
        assert!(idle < hold, "idle {idle} < hold {hold}");
        assert!(hold < typing, "hold {hold} < typing {typing}");
        assert!(typing < pickup, "typing {typing} < pickup {pickup}");
    }

    #[test]
    fn channel_settles_after_motion_stops() {
        let mut ch = CsiChannel::new(5);
        let _ = ch.amplitude_series(200, 1.0, 17);
        // Let the AR(1) memory decay, then re-measure stability.
        let _ = ch.amplitude_series(200, 0.0, 17);
        let settled = std_dev(&ch.amplitude_series(300, 0.0, 17));
        assert!(settled < 0.05, "settled std {settled}");
    }

    #[test]
    fn most_subcarriers_see_the_motion() {
        // Paper: "Most other subcarriers had similar patterns."
        let mut ch = CsiChannel::new(6);
        let mut idle_sd = vec![Vec::new(); DEFAULT_SUBCARRIERS];
        for _ in 0..200 {
            let s = ch.sample(0.0);
            for (k, v) in s.amplitudes.iter().enumerate() {
                idle_sd[k].push(*v);
            }
        }
        let mut moving_sd = vec![Vec::new(); DEFAULT_SUBCARRIERS];
        for _ in 0..200 {
            let s = ch.sample(1.0);
            for (k, v) in s.amplitudes.iter().enumerate() {
                moving_sd[k].push(*v);
            }
        }
        let mut responsive = 0;
        for k in 0..DEFAULT_SUBCARRIERS {
            if std_dev(&moving_sd[k]) > 3.0 * std_dev(&idle_sd[k]).max(1e-6) {
                responsive += 1;
            }
        }
        assert!(
            responsive as f64 > 0.8 * DEFAULT_SUBCARRIERS as f64,
            "only {responsive} subcarriers responsive"
        );
    }

    #[test]
    fn same_seed_same_series() {
        let mut a = CsiChannel::new(9);
        let mut b = CsiChannel::new(9);
        assert_eq!(
            a.amplitude_series(50, 0.7, 3),
            b.amplitude_series(50, 0.7, 3)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = CsiChannel::new(1);
        let mut b = CsiChannel::new(2);
        assert_ne!(
            a.amplitude_series(10, 0.5, 3),
            b.amplitude_series(10, 0.5, 3)
        );
    }

    #[test]
    fn intensity_clamped() {
        let mut ch = CsiChannel::new(10);
        // Out-of-range intensities must not blow up the channel.
        let s = ch.sample(42.0);
        assert!(s.amplitudes.iter().all(|a| a.is_finite()));
        let s = ch.sample(-3.0);
        assert!(s.amplitudes.iter().all(|a| a.is_finite()));
    }

    #[test]
    fn sample_batch_is_bit_identical_to_sample_loop() {
        let intensities: Vec<f64> = (0..120).map(|i| (i % 7) as f64 / 6.0).collect();
        let mut aos = CsiChannel::new(11);
        let mut soa = CsiChannel::new(11);
        let batch = soa.sample_batch(&intensities);
        assert_eq!(batch.len(), intensities.len());
        for (s, &m) in intensities.iter().enumerate() {
            let snap = aos.sample(m);
            assert_eq!(batch.snapshot(s), snap, "sample {s}");
        }
    }

    #[test]
    fn csi_batch_accessors_agree() {
        let mut ch = CsiChannel::new(12);
        let batch = ch.sample_batch(&[0.0, 0.5, 1.0]);
        let col = batch.subcarrier_amplitudes(17);
        assert_eq!(col.len(), 3);
        for (s, v) in col.iter().enumerate() {
            assert_eq!(*v, batch.amplitude(s, 17));
        }
        let mut tail = CsiBatch::with_capacity(batch.subcarriers, 1);
        tail.extend(&ch.sample_batch(&[0.25]));
        assert_eq!(tail.len(), 1);
        let mut all = batch.clone();
        all.extend(&tail);
        assert_eq!(all.len(), 4);
        assert_eq!(all.snapshot(3), tail.snapshot(0));
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut ch = CsiChannel::new(13);
        let batch = ch.sample_batch(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
    }

    #[test]
    fn std_dev_edge_cases() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
