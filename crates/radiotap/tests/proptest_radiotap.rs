//! Property tests: radiotap headers round-trip for every combination of
//! populated fields, and the parser is total on garbage input.

use polite_wifi_radiotap::{ChannelInfo, Flags, McsInfo, Radiotap};
use proptest::prelude::*;

fn arb_radiotap() -> impl Strategy<Value = Radiotap> {
    (
        (
            proptest::option::of(any::<u64>()),
            proptest::option::of(any::<u8>().prop_map(Flags)),
            proptest::option::of(any::<u8>()),
            proptest::option::of(
                (any::<u16>(), any::<u16>())
                    .prop_map(|(freq_mhz, flags)| ChannelInfo { freq_mhz, flags }),
            ),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<i8>()),
            proptest::option::of(any::<i8>()),
            proptest::option::of(any::<u16>()),
        ),
        (
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<i8>()),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<u16>()),
            proptest::option::of(any::<u8>()),
            proptest::option::of((any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
                |(known, flags, index)| McsInfo {
                    known,
                    flags,
                    index,
                },
            )),
        ),
    )
        .prop_map(
            |(
                (tsft_us, flags, rate, channel, fhss, sig, noise, lockq),
                (txatt, txatt_db, txpow, ant, sig_db, noise_db, rxf, txf, retries, mcs),
            )| Radiotap {
                tsft_us,
                flags,
                rate_500kbps: rate,
                channel,
                fhss,
                antenna_signal_dbm: sig,
                antenna_noise_dbm: noise,
                lock_quality: lockq,
                tx_attenuation: txatt,
                tx_attenuation_db: txatt_db,
                tx_power_dbm: txpow,
                antenna: ant,
                antenna_signal_db: sig_db,
                antenna_noise_db: noise_db,
                rx_flags: rxf,
                tx_flags: txf,
                data_retries: retries,
                mcs,
            },
        )
}

proptest! {
    #[test]
    fn any_field_combination_round_trips(rt in arb_radiotap()) {
        let bytes = rt.encode();
        let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(parsed, rt);
    }

    #[test]
    fn length_field_always_matches_encoding(rt in arb_radiotap()) {
        let bytes = rt.encode();
        let declared = u16::from_le_bytes([bytes[2], bytes[3]]) as usize;
        prop_assert_eq!(declared, bytes.len());
    }

    #[test]
    fn header_survives_trailing_payload(rt in arb_radiotap(),
                                        tail in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = rt.encode();
        let hdr_len = bytes.len();
        bytes.extend_from_slice(&tail);
        let (parsed, consumed) = Radiotap::parse(&bytes).unwrap();
        prop_assert_eq!(consumed, hdr_len);
        prop_assert_eq!(parsed, rt);
    }

    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Radiotap::parse(&bytes);
    }
}
