//! Observability taps for the MAC layer.
//!
//! [`observe_actions`] inspects the [`MacAction`]s a station emitted and
//! records the metrics the paper's claims rest on: how fast the ACK/CTS
//! response was scheduled relative to the SIFS deadline (the whole point
//! of Polite WiFi is that this never waits for validation), and what the
//! higher layers did with the frame afterwards (deliver / discard and
//! why). The simulator calls this once per action batch.

use crate::actions::MacAction;
use polite_wifi_obs::Obs;

/// Records counters and histograms for one batch of MAC actions.
///
/// `sifs_us` is the responding station's SIFS (band-dependent: 10 µs at
/// 2.4 GHz, 16 µs at 5 GHz). Metric names:
///
/// * `mac.acks_scheduled`, `mac.cts_scheduled` — responses queued;
/// * `mac.ack_turnaround_us`, `mac.cts_turnaround_us` — histogram of the
///   scheduled response delay;
/// * `mac.sifs_deadline_met` / `mac.sifs_deadline_missed` — whether the
///   response made the SIFS deadline (misses come from misbehaving
///   profiles, e.g. `validate-then-ACK` ablations);
/// * `mac.delivered`, `mac.enqueued` — higher-layer outcomes;
/// * `mac.discard.<reason>` — per-[`DiscardReason`](crate::DiscardReason)
///   discard counts.
///
/// Turnaround histograms are recorded twice: once globally and once under
/// a `.<class>` suffix keyed by the responder's device class (its band,
/// inferred from `sifs_us`: 10 µs → `ghz2`, 16 µs → `ghz5`), so
/// `trace_query` can report SIFS-turnaround percentiles per class.
pub fn observe_actions(obs: &mut Obs, sifs_us: u32, actions: &[MacAction]) {
    let class = match sifs_us {
        10 => "ghz2",
        16 => "ghz5",
        _ => "other",
    };
    for action in actions {
        match action {
            MacAction::Respond { delay_us, .. } => {
                let (sched, turnaround) = if action.is_ack() {
                    ("mac.acks_scheduled", "mac.ack_turnaround_us")
                } else if action.is_cts() {
                    ("mac.cts_scheduled", "mac.cts_turnaround_us")
                } else {
                    ("mac.responses_scheduled", "mac.response_turnaround_us")
                };
                obs.incr(sched);
                obs.observe(turnaround, *delay_us as u64);
                obs.observe(&format!("{turnaround}.{class}"), *delay_us as u64);
                if *delay_us <= sifs_us {
                    obs.incr("mac.sifs_deadline_met");
                } else {
                    obs.incr("mac.sifs_deadline_missed");
                }
            }
            MacAction::Enqueue { .. } => obs.incr("mac.enqueued"),
            MacAction::Deliver(_) => obs.incr("mac.delivered"),
            MacAction::Discard { reason } => {
                obs.incr(&format!("mac.discard.{}", reason.metric_label()));
            }
            MacAction::Radio(_) => {} // dwell accounting lives in the simulator
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::DiscardReason;
    use polite_wifi_frame::{builder, MacAddr};
    use polite_wifi_obs::ObsConfig;
    use polite_wifi_phy::rate::BitRate;

    #[test]
    fn ack_at_sifs_meets_deadline() {
        let mut obs = Obs::with_config(ObsConfig::default());
        let actions = vec![
            MacAction::Respond {
                frame: builder::ack(MacAddr::FAKE),
                delay_us: 10,
                rate: BitRate::Mbps1,
            },
            MacAction::Discard {
                reason: DiscardReason::NotAssociated,
            },
        ];
        observe_actions(&mut obs, 10, &actions);
        assert_eq!(obs.counters.get("mac.acks_scheduled"), 1);
        assert_eq!(obs.counters.get("mac.sifs_deadline_met"), 1);
        assert_eq!(obs.counters.get("mac.sifs_deadline_missed"), 0);
        assert_eq!(obs.counters.get("mac.discard.not_associated"), 1);
        let h = obs.histograms.get("mac.ack_turnaround_us").unwrap();
        assert_eq!((h.count, h.min, h.max), (1, 10, 10));
        let per_class = obs.histograms.get("mac.ack_turnaround_us.ghz2").unwrap();
        assert_eq!((per_class.count, per_class.min, per_class.max), (1, 10, 10));
    }

    #[test]
    fn turnaround_class_follows_sifs() {
        let mut obs = Obs::with_config(ObsConfig::default());
        let actions = vec![MacAction::Respond {
            frame: builder::ack(MacAddr::FAKE),
            delay_us: 16,
            rate: BitRate::Mbps1,
        }];
        observe_actions(&mut obs, 16, &actions);
        assert!(obs.histograms.get("mac.ack_turnaround_us.ghz5").is_some());
        assert!(obs.histograms.get("mac.ack_turnaround_us.ghz2").is_none());
    }

    #[test]
    fn late_ack_misses_deadline() {
        let mut obs = Obs::with_config(ObsConfig::default());
        let actions = vec![MacAction::Respond {
            frame: builder::ack(MacAddr::FAKE),
            delay_us: 2_000, // a validate-then-ACK ablation profile
            rate: BitRate::Mbps1,
        }];
        observe_actions(&mut obs, 10, &actions);
        assert_eq!(obs.counters.get("mac.sifs_deadline_missed"), 1);
    }

    #[test]
    fn cts_and_outcomes_counted() {
        let mut obs = Obs::with_config(ObsConfig::default());
        let actions = vec![
            MacAction::Respond {
                frame: builder::cts(MacAddr::FAKE, 100),
                delay_us: 10,
                rate: BitRate::Mbps1,
            },
            MacAction::Deliver(builder::ack(MacAddr::FAKE)),
        ];
        observe_actions(&mut obs, 10, &actions);
        assert_eq!(obs.counters.get("mac.cts_scheduled"), 1);
        assert_eq!(obs.counters.get("mac.delivered"), 1);
    }
}
