//! The job table and its state machine.
//!
//! ```text
//!            ┌────────────────── retry (bounded) ──────────────┐
//!            ▼                                                 │
//! submit → Queued → Running → Done                             │
//!                       │                                      │
//!                       ├─ exit ≠ 0 / panic / io ──→ Failed ───┘
//!                       └─ deadline, token raised ──→ TimedOut
//! ```
//!
//! Done, Failed and TimedOut are terminal (TimedOut and a job that has
//! exhausted its retry budget never re-enter the queue). Every
//! transition happens under the daemon's single state lock, and every
//! terminal transition notifies the condvar so `wait=1` submitters and
//! the drain loop wake up.

use polite_wifi_harness::{CancelToken, ChannelProgress};
use std::sync::Arc;
use std::time::Instant;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    TimedOut,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::TimedOut => "timed_out",
        }
    }

    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::TimedOut)
    }
}

/// One submitted scenario run.
#[derive(Debug)]
pub struct Job {
    pub id: u64,
    /// Content address: `canonical_hash()` of the submitted spec.
    pub key: String,
    pub slug: String,
    pub runner: String,
    /// The canonical spec text (re-parsed by the worker that runs it).
    pub spec_json: String,
    pub state: JobState,
    /// Execution attempts started so far (1 on the first run).
    pub attempts: u32,
    /// `--inject-trial-panic` passthrough; set ⇒ the result is
    /// deliberately degraded and must never be cached or coalesced.
    pub inject_trial_panic: Option<usize>,
    /// Whether this job's result was served from / stored to the cache.
    pub cached: bool,
    /// Human-readable failure or timeout diagnostics.
    pub detail: String,
    pub submitted_at: Instant,
    pub started_at: Option<Instant>,
    pub finished_at: Option<Instant>,
    /// Raised by the supervisor when the job overruns its deadline; the
    /// harness's trial loop observes it cooperatively.
    pub token: Option<CancelToken>,
    /// Deadline for the current attempt (set when the attempt starts).
    pub deadline: Option<Instant>,
    /// Delayed-retry gate: not eligible to run again before this.
    pub not_before: Option<Instant>,
    /// Run parameters echoed into status (heartbeat-style fields).
    pub trials: u64,
    pub workers: u64,
    pub seed: u64,
    /// The per-job flight recorder: every lifecycle and trial-boundary
    /// event this job emits, journaled (bounded) and subscribable via
    /// `/watch/<id>`. Survives retries — the journal tells the whole
    /// story of the job, not one attempt.
    pub recorder: Arc<ChannelProgress>,
    /// Supervisor bookkeeping: when the last `deadline_remaining`
    /// event was published, so the 2ms tick doesn't flood the journal.
    pub last_deadline_event: Option<Instant>,
}

impl Job {
    /// Milliseconds the job has been executing (current attempt's start
    /// to finish-or-now). 0 while queued.
    pub fn elapsed_ms(&self, now: Instant) -> u64 {
        match self.started_at {
            Some(start) => {
                let end = self.finished_at.unwrap_or(now);
                end.saturating_duration_since(start).as_millis() as u64
            }
            None => 0,
        }
    }

    /// The `/jobs/<id>` status document: state + the PR 5
    /// `--progress`-style heartbeat fields (attempts, elapsed, run
    /// shape), live trial progress pulled from the flight recorder,
    /// and — for queued jobs — the position in line (`queue_position`,
    /// 0 = next to run), so a poller can see liveness without scraping
    /// stdout.
    pub fn status_json(&self, now: Instant, queue_position: Option<u64>) -> String {
        let position = match queue_position {
            Some(p) => format!("\"queue_position\": {p}, "),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"id\": {}, \"state\": \"{}\", \"key\": \"{}\", \"slug\": \"{}\", ",
                "\"runner\": \"{}\", \"attempts\": {}, \"cached\": {}, ",
                "\"elapsed_ms\": {}, \"trials\": {}, \"trials_done\": {}, ",
                "\"workers\": {}, \"seed\": {}, \"events\": {}, {}\"detail\": \"{}\"}}"
            ),
            self.id,
            self.state.name(),
            self.key,
            self.slug,
            self.runner,
            self.attempts,
            self.cached,
            self.elapsed_ms(now),
            self.trials,
            self.recorder.trials_done(),
            self.workers,
            self.seed,
            self.recorder.hub().published(),
            position,
            escape(&self.detail),
        )
    }
}

/// Minimal JSON string escaping for the detail field.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        Job {
            id: 7,
            key: "00112233aabbccdd".to_string(),
            slug: "t".to_string(),
            runner: "generic".to_string(),
            spec_json: String::new(),
            state: JobState::Queued,
            attempts: 0,
            inject_trial_panic: None,
            cached: false,
            detail: String::new(),
            submitted_at: Instant::now(),
            started_at: None,
            finished_at: None,
            token: None,
            deadline: None,
            not_before: None,
            trials: 3,
            workers: 1,
            seed: 2,
            recorder: Arc::new(ChannelProgress::new(64)),
            last_deadline_event: None,
        }
    }

    #[test]
    fn terminal_states_are_exactly_done_failed_timed_out() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::TimedOut.is_terminal());
    }

    #[test]
    fn status_json_carries_heartbeat_fields_and_escapes_detail() {
        let mut j = job();
        j.state = JobState::Failed;
        j.attempts = 2;
        j.detail = "exit status 1: \"assertion\"\nline2".to_string();
        let json = j.status_json(Instant::now(), None);
        for needle in [
            "\"id\": 7",
            "\"state\": \"failed\"",
            "\"attempts\": 2",
            "\"elapsed_ms\": 0",
            "\"trials\": 3",
            "\"trials_done\": 0",
            "\"workers\": 1",
            "\"seed\": 2",
            "\"events\": 0",
            "\\\"assertion\\\"\\nline2",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains("queue_position"));
    }

    #[test]
    fn status_json_reports_queue_position_and_recorder_progress() {
        use polite_wifi_harness::ProgressSink;
        let j = job();
        j.recorder.trial_finished(2, 3);
        let json = j.status_json(Instant::now(), Some(4));
        for needle in [
            "\"queue_position\": 4",
            "\"trials_done\": 2",
            "\"events\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn elapsed_uses_finish_time_once_terminal() {
        let mut j = job();
        let t0 = Instant::now();
        j.started_at = Some(t0);
        j.finished_at = Some(t0 + std::time::Duration::from_millis(250));
        assert_eq!(j.elapsed_ms(t0 + std::time::Duration::from_secs(60)), 250);
    }
}
