//! Per-device behavioural knobs observed in the paper's device study.

use serde::{Deserialize, Serialize};

/// Power-save parameters for battery-operated stations (ESP8266-style).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSave {
    /// How long the radio stays awake after the last traffic before it
    /// dozes, in microseconds. ~100 ms is typical of IoT modules, and is
    /// what makes ">10 packets per second prevents sleep" (Figure 6).
    pub idle_timeout_us: u64,
    /// Beacon interval of the associated AP in microseconds; the station
    /// wakes this often to receive beacons even when dozing.
    pub beacon_interval_us: u64,
    /// How long a beacon reception keeps the radio up, in microseconds.
    pub beacon_rx_us: u64,
}

impl PowerSave {
    /// The ESP8266 modem-sleep profile used in the Section 4.2 experiment.
    pub fn esp8266() -> PowerSave {
        PowerSave {
            idle_timeout_us: 100_000,    // 100 ms
            beacon_interval_us: 102_400, // 100 TU
            beacon_rx_us: 3_000,
        }
    }
}

/// How a device reacts to traffic — every knob mirrors behaviour the paper
/// reports. None of them can stop the ACK; that is the point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Behavior {
    /// AP profile from Figure 3: respond to fake (class-3) frames with a
    /// burst of deauthentication frames...while still ACKing the fakes.
    pub deauth_on_fake: bool,
    /// Number of deauthentication frames per burst (the figure shows 3 —
    /// MAC-level retries sharing one sequence number).
    pub deauth_burst: u8,
    /// Minimum microseconds between deauth bursts, so an injection flood
    /// does not turn into a deauth storm.
    pub deauth_cooldown_us: u64,
    /// 802.11w PMF: reject unprotected deauth/disassoc from the air.
    /// Protects against *deauth attacks*, not against Polite WiFi.
    pub pmf: bool,
    /// Administrator blocklist is consulted by the host software. The
    /// ACK is generated below it, so this only suppresses delivery.
    pub use_blocklist: bool,
    /// Power-save behaviour, for battery-operated devices.
    pub power_save: Option<PowerSave>,
    /// Whether this device answers RTS with CTS even when unassociated
    /// (all tested devices do, per Wang et al. and the paper).
    pub cts_to_stranger_rts: bool,
    /// **Ablation knob** (no real device works this way): decrypt and
    /// validate the frame *before* acknowledging, taking this many
    /// microseconds. The ACK then leaves after `validate_first_us`
    /// instead of SIFS — far past the transmitter's timeout, so every
    /// frame is retransmitted. Quantifies DESIGN.md §5's first ablation.
    pub validate_first_us: Option<u32>,
}

impl Default for Behavior {
    fn default() -> Self {
        Behavior {
            deauth_on_fake: false,
            deauth_burst: 3,
            deauth_cooldown_us: 50_000,
            pmf: false,
            use_blocklist: false,
            power_save: None,
            cts_to_stranger_rts: true,
            validate_first_us: None,
        }
    }
}

impl Behavior {
    /// A typical client device (tablet, laptop, phone).
    pub fn client() -> Behavior {
        Behavior::default()
    }

    /// A typical AP that tolerates strangers silently.
    pub fn quiet_ap() -> Behavior {
        Behavior::default()
    }

    /// The Figure 3 AP: deauths the attacker, blocklists do nothing,
    /// ACKs regardless.
    pub fn deauthing_ap() -> Behavior {
        Behavior {
            deauth_on_fake: true,
            use_blocklist: true,
            ..Behavior::default()
        }
    }

    /// A battery-operated IoT module (the drain-attack victim).
    pub fn iot_power_save() -> Behavior {
        Behavior {
            power_save: Some(PowerSave::esp8266()),
            ..Behavior::default()
        }
    }

    /// A PMF (802.11w) network member — still polite.
    pub fn pmf_client() -> Behavior {
        Behavior {
            pmf: true,
            ..Behavior::default()
        }
    }

    /// The hypothetical validate-then-ACK device of §2.2, for ablation:
    /// `decode_us` models the WPA2 frame-processing latency (the cited
    /// range is 200–700 µs).
    pub fn hypothetical_validating(decode_us: u32) -> Behavior {
        Behavior {
            validate_first_us: Some(decode_us),
            ..Behavior::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_it_matters() {
        assert!(Behavior::deauthing_ap().deauth_on_fake);
        assert!(!Behavior::quiet_ap().deauth_on_fake);
        assert!(Behavior::pmf_client().pmf);
        assert!(Behavior::iot_power_save().power_save.is_some());
    }

    #[test]
    fn esp8266_profile_idle_timeout_explains_10pps_knee() {
        // With a 100 ms idle timeout, any inter-packet gap under 100 ms
        // (i.e. >10 pps) keeps the radio awake permanently.
        let ps = PowerSave::esp8266();
        assert_eq!(ps.idle_timeout_us, 100_000);
        let rate_that_prevents_sleep = 1_000_000 / ps.idle_timeout_us;
        assert_eq!(rate_that_prevents_sleep, 10);
    }

    #[test]
    fn every_profile_answers_stranger_rts() {
        for b in [
            Behavior::client(),
            Behavior::quiet_ap(),
            Behavior::deauthing_ap(),
            Behavior::iot_power_save(),
            Behavior::pmf_client(),
        ] {
            assert!(b.cts_to_stranger_rts);
        }
    }
}
