//! Prometheus/OpenMetrics exposition-text rendering.
//!
//! One writer shared by the two exporters that speak this format: the
//! offline `trace_query --prom` mode (envelopes → labelled samples) and
//! the `polite-wifi-d` daemon's live `/metrics` endpoint (its own
//! [`Obs`](crate::Obs) scope). Counters render as `counter` metrics,
//! log2 histograms as four `_count`/`_sum`/`_min`/`_max` gauges — the
//! exact shape CI's format grep pins
//! (`^# TYPE polite_wifi_\w+ (counter|gauge)$` … `# EOF`).

use crate::metrics::{Counters, Histograms};
use std::fmt::Write;

/// Sanitises a metric name for Prometheus: `[a-zA-Z0-9_]` survives,
/// everything else becomes `_`, and everything gets the `polite_wifi_`
/// namespace prefix.
pub fn prom_name(name: &str) -> String {
    let mapped: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("polite_wifi_{mapped}")
}

/// Escapes a label value (`\` and `"`).
pub fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a label set as `{k="v",…}`; empty input renders as nothing,
/// so unlabelled samples come out as `metric value`.
pub fn label_set(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Incremental exposition-text writer. Callers emit whole metric
/// families (`# TYPE` line first, then every sample), and
/// [`finish`](OpenMetricsWriter::finish) appends the `# EOF` terminator.
#[derive(Default)]
pub struct OpenMetricsWriter {
    out: String,
}

impl OpenMetricsWriter {
    /// An empty writer.
    pub fn new() -> OpenMetricsWriter {
        OpenMetricsWriter::default()
    }

    /// One counter family: the `# TYPE` line, then each `(labels,
    /// value)` sample. `labels` must already be rendered ([`label_set`]).
    pub fn counter(&mut self, raw_name: &str, samples: &[(String, u64)]) {
        self.family(raw_name, "counter", samples);
    }

    /// One gauge family, same shape as [`counter`](Self::counter).
    pub fn gauge(&mut self, raw_name: &str, samples: &[(String, u64)]) {
        self.family(raw_name, "gauge", samples);
    }

    fn family(&mut self, raw_name: &str, kind: &str, samples: &[(String, u64)]) {
        let metric = prom_name(raw_name);
        let _ = writeln!(self.out, "# TYPE {metric} {kind}");
        for (labels, value) in samples {
            let _ = writeln!(self.out, "{metric}{labels} {value}");
        }
    }

    /// Renders a whole [`Counters`]/[`Histograms`] scope with one shared
    /// label set: counters first in sorted-name order, then per-name
    /// `_count`/`_sum`/`_min`/`_max` histogram gauges — the same
    /// family order the envelope exporter uses.
    pub fn scope(&mut self, counters: &Counters, histograms: &Histograms, labels: &str) {
        for (name, value) in counters.sorted() {
            self.counter(name, &[(labels.to_string(), value)]);
        }
        for (name, h) in histograms.sorted() {
            let min = if h.count == 0 { 0 } else { h.min };
            for (suffix, value) in [
                ("count", h.count),
                ("sum", h.sum),
                ("min", min),
                ("max", h.max),
            ] {
                self.gauge(&format!("{name}_{suffix}"), &[(labels.to_string(), value)]);
            }
        }
    }

    /// Terminates the exposition (`# EOF`) and returns the text.
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_sanitised_and_prefixed() {
        assert_eq!(
            prom_name("daemon.cache.hit"),
            "polite_wifi_daemon_cache_hit"
        );
        assert_eq!(
            prom_name("mac.ack_turnaround_us.ghz2"),
            "polite_wifi_mac_ack_turnaround_us_ghz2"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(
            label_set(&[("experiment", "say \"hi\"")]),
            "{experiment=\"say \\\"hi\\\"\"}"
        );
        assert_eq!(label_set(&[]), "");
    }

    #[test]
    fn scope_renders_counters_then_histogram_gauges() {
        let mut counters = Counters::new();
        counters.add("daemon.cache.hit", 3);
        let mut histograms = Histograms::new();
        histograms.observe("daemon.queue.depth", 2);
        histograms.observe("daemon.queue.depth", 5);
        let mut w = OpenMetricsWriter::new();
        w.scope(&counters, &histograms, "");
        let text = w.finish();
        let expected = "\
# TYPE polite_wifi_daemon_cache_hit counter
polite_wifi_daemon_cache_hit 3
# TYPE polite_wifi_daemon_queue_depth_count gauge
polite_wifi_daemon_queue_depth_count 2
# TYPE polite_wifi_daemon_queue_depth_sum gauge
polite_wifi_daemon_queue_depth_sum 7
# TYPE polite_wifi_daemon_queue_depth_min gauge
polite_wifi_daemon_queue_depth_min 2
# TYPE polite_wifi_daemon_queue_depth_max gauge
polite_wifi_daemon_queue_depth_max 5
# EOF
";
        assert_eq!(text, expected);
    }

    #[test]
    fn every_type_line_matches_the_ci_format_grep() {
        let mut w = OpenMetricsWriter::new();
        w.counter("sim.frames_txed", &[(String::new(), 1)]);
        w.gauge("daemon.queue.depth_max", &[(String::new(), 9)]);
        let text = w.finish();
        for line in text.lines().filter(|l| l.starts_with("# TYPE")) {
            let rest = line.strip_prefix("# TYPE polite_wifi_").unwrap();
            let (name, kind) = rest.split_once(' ').unwrap();
            assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            assert!(kind == "counter" || kind == "gauge");
        }
        assert!(text.ends_with("# EOF\n"));
    }
}
