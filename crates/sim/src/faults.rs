//! Deterministic fault injection: the chaos layer of the simulator.
//!
//! The paper's wardriving rig lived in hostile conditions — lossy urban
//! RF, drive-by contact windows, a flaky RTL8812AU dongle — and its
//! three-thread pipeline only worked because the attacker retried and
//! timed out. This module models those impairments as a *seed-
//! deterministic* [`FaultPlan`]:
//!
//! * **Gilbert–Elliott burst loss** — a two-state Markov chain (good/
//!   bad) stepped once per frame reception, corrupting FCS checks in
//!   bursts the way real fading channels do;
//! * **per-direction SNR degradation** — asymmetric link budgets
//!   (forward = lower node id → higher, reverse = the other way), so an
//!   attacker can hear a victim that cannot hear it back;
//! * **clock drift** — stretches the monitor-mode dongle's timer
//!   intervals by a ppm factor (observable at beacon-interval
//!   timescales); other nodes' clocks — in particular a victim's SIFS
//!   response timing, the fingerprinting signal — are never perturbed;
//! * **device stalls/reboots** — the monitor-mode dongle periodically
//!   freezes (drops everything in flight) and occasionally cold-boots.
//!
//! All stochastic fault decisions draw from a *dedicated* RNG stream
//! seeded `seed ^ FAULT_STREAM`, never from the medium's propagation
//! RNG — so the [`FaultProfile::Clean`] plan leaves every existing
//! result byte-identical, and any faulty run is byte-identical at any
//! `--workers` count (trial seeds derive per-index, fault draws follow
//! the deterministic event order).

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// XOR'd into the base seed for the dedicated fault RNG stream
/// (ASCII "FAULTS"), keeping fault draws out of the propagation and
/// scheduling streams.
pub const FAULT_STREAM: u64 = 0x4641_554c_5453;

/// A two-state Gilbert–Elliott burst-loss channel. Stepped once per
/// frame reception; each step first transitions the state, then draws
/// the per-state loss probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// P(good → bad) per step.
    pub p_good_to_bad: f64,
    /// P(bad → good) per step.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// Advances the chain one step and returns whether this frame is
    /// lost. `bad` is the chain's state, owned by the caller.
    pub fn step(&self, bad: &mut bool, rng: &mut ChaCha8Rng) -> bool {
        let t: f64 = rng.gen();
        *bad = if *bad {
            t >= self.p_bad_to_good
        } else {
            t < self.p_good_to_bad
        };
        let loss = if *bad { self.loss_bad } else { self.loss_good };
        loss > 0.0 && rng.gen::<f64>() < loss
    }

    /// Long-run fraction of steps spent in the bad state.
    pub fn steady_state_bad(&self) -> f64 {
        let denom = self.p_good_to_bad + self.p_bad_to_good;
        if denom == 0.0 {
            0.0
        } else {
            self.p_good_to_bad / denom
        }
    }
}

/// Asymmetric SNR penalties, keyed by node declaration order: the
/// *forward* direction is lower node id → higher, *reverse* the other
/// way. Both in dB, subtracted from the faded receive power.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SnrDegradation {
    /// Penalty (dB) on frames from a lower-id node to a higher-id node.
    pub forward_db: f64,
    /// Penalty (dB) on frames from a higher-id node to a lower-id node.
    pub reverse_db: f64,
}

impl SnrDegradation {
    /// The penalty applying to a frame from `from` to `to` (node ids).
    pub fn penalty_db(&self, from: usize, to: usize) -> f64 {
        if from < to {
            self.forward_db
        } else {
            self.reverse_db
        }
    }

    /// True when both directions are clean.
    pub fn is_zero(&self) -> bool {
        self.forward_db == 0.0 && self.reverse_db == 0.0
    }
}

/// A periodic device stall: the target node freezes for `duration_us`
/// every `period_us`, and every `reboot_every`-th stall ends in a cold
/// boot (station state machine rebuilt, queues dropped).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallSchedule {
    /// Interval between stall onsets, µs. The first stall starts one
    /// period into the run.
    pub period_us: u64,
    /// How long each stall lasts, µs.
    pub duration_us: u64,
    /// Every Nth stall ends in a reboot (0 = never reboot).
    pub reboot_every: u32,
}

/// The full fault plan a simulator runs under. [`FaultPlan::clean`] is
/// the identity plan: no draws, no penalties, no stalls — byte-identical
/// to a simulator without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Burst loss on the shared medium, if any.
    pub burst_loss: Option<GilbertElliott>,
    /// Asymmetric SNR penalties.
    pub snr: SnrDegradation,
    /// Clock drift applied to the first monitor-mode node's timer
    /// intervals (the attacker's dongle has the cheap oscillator),
    /// parts-per-million. Scenarios without a monitor node ignore this.
    pub clock_drift_ppm: f64,
    /// Scheduled stalls of the first monitor-mode node (the attacker's
    /// dongle), if any. Scenarios without a monitor node ignore this.
    pub stall: Option<StallSchedule>,
}

impl FaultPlan {
    /// The identity plan.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan injects nothing — the fault layer is fully
    /// bypassed and the run is byte-identical to a pre-fault simulator.
    pub fn is_clean(&self) -> bool {
        self.burst_loss.is_none()
            && self.snr.is_zero()
            && self.clock_drift_ppm == 0.0
            && self.stall.is_none()
    }
}

/// A named fault profile — the `--faults` vocabulary every experiment
/// binary shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FaultProfile {
    /// No faults; byte-identical to the pre-fault simulator.
    #[default]
    Clean,
    /// A wardriving pass through a city: bursty street-level loss, an
    /// asymmetric link budget and mild clock drift.
    UrbanDrive,
    /// A crowded channel: long bad-state dwells and heavy loss.
    Congested,
    /// The paper's RTL8812AU dongle on a bad day: periodic firmware
    /// stalls, occasional cold boots, drifting clock, light loss.
    FlakyDongle,
}

impl FaultProfile {
    /// Every named profile, for docs and `--help`.
    pub const ALL: [FaultProfile; 4] = [
        FaultProfile::Clean,
        FaultProfile::UrbanDrive,
        FaultProfile::Congested,
        FaultProfile::FlakyDongle,
    ];

    /// The profile's canonical flag spelling.
    pub fn name(&self) -> &'static str {
        match self {
            FaultProfile::Clean => "clean",
            FaultProfile::UrbanDrive => "urban-drive",
            FaultProfile::Congested => "congested",
            FaultProfile::FlakyDongle => "flaky-dongle",
        }
    }

    /// True for [`FaultProfile::Clean`].
    pub fn is_clean(&self) -> bool {
        matches!(self, FaultProfile::Clean)
    }

    /// The concrete plan this profile names.
    pub fn plan(&self) -> FaultPlan {
        match self {
            FaultProfile::Clean => FaultPlan::clean(),
            FaultProfile::UrbanDrive => FaultPlan {
                burst_loss: Some(GilbertElliott {
                    p_good_to_bad: 0.08,
                    p_bad_to_good: 0.35,
                    loss_good: 0.02,
                    loss_bad: 0.60,
                }),
                snr: SnrDegradation {
                    forward_db: 3.0,
                    reverse_db: 5.0,
                },
                clock_drift_ppm: 20.0,
                stall: None,
            },
            FaultProfile::Congested => FaultPlan {
                burst_loss: Some(GilbertElliott {
                    p_good_to_bad: 0.15,
                    p_bad_to_good: 0.25,
                    loss_good: 0.05,
                    loss_bad: 0.80,
                }),
                snr: SnrDegradation {
                    forward_db: 2.0,
                    reverse_db: 2.0,
                },
                clock_drift_ppm: 5.0,
                stall: None,
            },
            FaultProfile::FlakyDongle => FaultPlan {
                burst_loss: Some(GilbertElliott {
                    p_good_to_bad: 0.02,
                    p_bad_to_good: 0.50,
                    loss_good: 0.0,
                    loss_bad: 0.30,
                }),
                snr: SnrDegradation::default(),
                clock_drift_ppm: 50.0,
                stall: Some(StallSchedule {
                    period_us: 2_000_000,
                    duration_us: 150_000,
                    reboot_every: 5,
                }),
            },
        }
    }
}

impl std::fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultProfile {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "clean" => Ok(FaultProfile::Clean),
            "urban-drive" => Ok(FaultProfile::UrbanDrive),
            "congested" => Ok(FaultProfile::Congested),
            "flaky-dongle" => Ok(FaultProfile::FlakyDongle),
            other => Err(format!(
                "unknown fault profile `{other}` (expected one of: clean, urban-drive, congested, flaky-dongle)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn profile_names_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(p.name().parse::<FaultProfile>().unwrap(), p);
            assert_eq!(format!("{p}"), p.name());
        }
        assert!("warp-drive".parse::<FaultProfile>().is_err());
    }

    #[test]
    fn clean_plan_is_clean_and_others_are_not() {
        assert!(FaultProfile::Clean.plan().is_clean());
        for p in [
            FaultProfile::UrbanDrive,
            FaultProfile::Congested,
            FaultProfile::FlakyDongle,
        ] {
            assert!(!p.plan().is_clean(), "{p} must inject something");
        }
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty_and_deterministic() {
        let ge = FaultProfile::UrbanDrive.plan().burst_loss.unwrap();
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ FAULT_STREAM);
            let mut bad = false;
            (0..5_000)
                .map(|_| ge.step(&mut bad, &mut rng))
                .collect::<Vec<bool>>()
        };
        let a = run(9);
        assert_eq!(a, run(9), "fault stream must be seed-deterministic");
        assert_ne!(a, run(10));

        // Loss rate lands between the good and bad state rates, and
        // losses cluster: the mean run length of consecutive losses
        // exceeds what independent drops at the same rate would give.
        let losses = a.iter().filter(|&&l| l).count() as f64 / a.len() as f64;
        assert!(losses > ge.loss_good && losses < ge.loss_bad);
        let mut runs = 0usize;
        let mut in_run = false;
        for &l in &a {
            if l && !in_run {
                runs += 1;
            }
            in_run = l;
        }
        let mean_run = losses * a.len() as f64 / runs as f64;
        assert!(mean_run > 1.0 / (1.0 - losses) * 1.05, "losses not bursty");
    }

    #[test]
    fn steady_state_matches_transition_ratio() {
        let ge = GilbertElliott {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.3,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        assert!((ge.steady_state_bad() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snr_degradation_is_directional() {
        let snr = SnrDegradation {
            forward_db: 3.0,
            reverse_db: 5.0,
        };
        assert_eq!(snr.penalty_db(0, 2), 3.0);
        assert_eq!(snr.penalty_db(2, 0), 5.0);
        assert!(SnrDegradation::default().is_zero());
    }
}
