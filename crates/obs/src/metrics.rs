//! Counters and log2-bucketed histograms.
//!
//! Both structures keep entries in **first-recorded order** and merge by
//! element-wise addition, so folding per-trial snapshots together in
//! trial-index order yields the same bytes however many workers ran the
//! trials. Histogram merge is associative and commutative (it is a sum
//! of fixed-width bucket vectors), which `tests/harness_parallelism.rs`
//! pins with a property test.

/// Number of histogram buckets: one per possible bit-length of a `u64`
/// value (0 through 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: its bit length, i.e. values `2^(i-1)..2^i`
/// land in bucket `i`, and 0 lands in bucket 0.
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A fixed-width log2 histogram of `u64` observations.
///
/// Buckets are powers of two (bucket `i` spans `2^(i-1)..2^i`), so the
/// layout never depends on the data and two histograms always merge by
/// element-wise addition of their bucket counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Observation count per log2 bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping add; sims never get close).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Element-wise addition, so
    /// the operation is associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the observations, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Named monotonically-increasing counters in first-recorded order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    entries: Vec<(String, u64)>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Adds `n` to a counter, creating it at 0 first if new.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(entry) = self.entries.iter_mut().find(|(k, _)| k == name) {
            entry.1 += n;
        } else {
            self.entries.push((name.to_string(), n));
        }
    }

    /// Current value of a counter (0 when never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in &other.entries {
            self.add(name, *value);
        }
    }

    /// All `(name, value)` pairs sorted by name (the canonical export
    /// order, independent of recording order).
    pub fn sorted(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> =
            self.entries.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// True when no counter exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Named histograms in first-recorded order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histograms {
    entries: Vec<(String, Histogram)>,
}

impl Histograms {
    /// An empty histogram set.
    pub fn new() -> Histograms {
        Histograms::default()
    }

    /// Records one observation into a named histogram, creating it if
    /// new.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.entry(name).observe(value);
    }

    fn entry(&mut self, name: &str) -> &mut Histogram {
        if let Some(idx) = self.entries.iter().position(|(k, _)| k == name) {
            &mut self.entries[idx].1
        } else {
            self.entries.push((name.to_string(), Histogram::new()));
            &mut self.entries.last_mut().unwrap().1
        }
    }

    /// Looks up a histogram by name.
    pub fn get(&self, name: &str) -> Option<&Histogram> {
        self.entries.iter().find(|(k, _)| k == name).map(|(_, h)| h)
    }

    /// Folds another histogram set into this one.
    pub fn merge(&mut self, other: &Histograms) {
        for (name, hist) in &other.entries {
            self.entry(name).merge(hist);
        }
    }

    /// All `(name, histogram)` pairs sorted by name (canonical export
    /// order).
    pub fn sorted(&self) -> Vec<(&str, &Histogram)> {
        let mut out: Vec<(&str, &Histogram)> =
            self.entries.iter().map(|(k, h)| (k.as_str(), h)).collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// True when no histogram exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_observe_and_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in [10, 16, 10] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 36);
        assert_eq!(h.min, 10);
        assert_eq!(h.max, 16);
        assert_eq!(h.mean(), Some(12.0));
        assert_eq!(h.buckets[bucket_index(10)], 2);
        assert_eq!(h.buckets[bucket_index(16)], 1);
    }

    #[test]
    fn histogram_merge_matches_sequential() {
        let values = [0u64, 1, 9, 10, 11, 16, 100, 5000, u64::MAX];
        let mut sequential = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, v) in values.iter().enumerate() {
            sequential.observe(*v);
            if i % 2 == 0 { &mut left } else { &mut right }.observe(*v);
        }
        let mut merged = Histogram::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, sequential);
        // Commutes.
        let mut flipped = Histogram::new();
        flipped.merge(&right);
        flipped.merge(&left);
        assert_eq!(flipped, sequential);
    }

    #[test]
    fn counters_add_get_merge() {
        let mut a = Counters::new();
        a.add("tx", 3);
        a.add("tx", 2);
        a.add("rx", 1);
        assert_eq!(a.get("tx"), 5);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("rx", 9);
        b.add("drops", 1);
        a.merge(&b);
        assert_eq!(a.get("rx"), 10);
        assert_eq!(a.get("drops"), 1);
        assert_eq!(a.sorted(), vec![("drops", 1), ("rx", 10), ("tx", 5)],);
    }

    #[test]
    fn histograms_named_merge() {
        let mut a = Histograms::new();
        a.observe("lat", 10);
        let mut b = Histograms::new();
        b.observe("lat", 12);
        b.observe("backoff", 90);
        a.merge(&b);
        assert_eq!(a.get("lat").unwrap().count, 2);
        assert_eq!(a.get("backoff").unwrap().count, 1);
        let names: Vec<&str> = a.sorted().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["backoff", "lat"]);
    }
}
