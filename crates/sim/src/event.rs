//! The event queue: time-ordered, deterministically tie-broken.

use crate::node::NodeId;
use polite_wifi_frame::Frame;
use polite_wifi_phy::rate::BitRate;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something that happens at a point in simulated time.
#[derive(Debug, Clone)]
pub enum Event {
    /// Run a station's timer work (`Station::poll`).
    Poll {
        /// Which node.
        node: NodeId,
    },
    /// A node attempts to start a queued (CSMA) transmission.
    TxAttempt {
        /// Which node.
        node: NodeId,
    },
    /// A node starts a scheduled response (SIFS-timed, bypasses CSMA).
    ResponseTx {
        /// Which node.
        node: NodeId,
        /// The response frame (ACK/CTS/...).
        frame: Frame,
        /// Transmit rate.
        rate: BitRate,
        /// Causal trace of the frame this responds to, if sampled.
        trace: Option<u64>,
    },
    /// A transmission ends at its transmitter.
    TxEnd {
        /// The transmitting node.
        node: NodeId,
    },
    /// A frame finishes arriving at a receiver.
    Arrival {
        /// The receiving node.
        node: NodeId,
        /// The transmitting node.
        from: NodeId,
        /// The frame.
        frame: Frame,
        /// Rate it was sent at.
        rate: BitRate,
        /// Time the frame started on the air (for overlap checks).
        start_us: u64,
        /// Band/channel the frame rode on.
        tune: crate::medium::Tune,
        /// Causal trace riding the transmission, if sampled.
        trace: Option<u64>,
    },
    /// The transmitter gave up waiting for an ACK.
    AckTimeout {
        /// The waiting node.
        node: NodeId,
        /// Token matching the transmission being timed.
        token: u64,
    },
    /// Fault injection: a device stall begins (the node freezes).
    StallStart {
        /// The stalling node.
        node: NodeId,
    },
    /// Fault injection: a device stall ends, optionally via cold boot.
    StallEnd {
        /// The recovering node.
        node: NodeId,
        /// Whether recovery is a cold boot (station state rebuilt).
        reboot: bool,
    },
    /// External injection: hand a frame to a node's transmit queue.
    Inject {
        /// The transmitting node.
        node: NodeId,
        /// The frame to send.
        frame: Frame,
        /// Rate to send at.
        rate: BitRate,
    },
}

impl Event {
    /// Stable event-kind name, the scheduler self-profiler's attribution
    /// key (and the leaf frame in collapsed-stack exports).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Poll { .. } => "poll",
            Event::TxAttempt { .. } => "tx_attempt",
            Event::ResponseTx { .. } => "response_tx",
            Event::TxEnd { .. } => "tx_end",
            Event::Arrival { .. } => "arrival",
            Event::AckTimeout { .. } => "ack_timeout",
            Event::StallStart { .. } => "stall_start",
            Event::StallEnd { .. } => "stall_end",
            Event::Inject { .. } => "inject",
        }
    }
}

/// An event bound to a time, ordered for the queue (earliest first; FIFO
/// among equal times via the sequence number).
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    /// When the event fires, in microseconds.
    pub at_us: u64,
    /// Monotonic tie-breaker.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which scheduler backend the simulator's event queue runs on. Both
/// dispatch in the identical (time, seq) total order; the calendar
/// queue is O(1) amortised per operation at city scale, the binary
/// heap is kept as the pre-refactor reference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Calendar queue with a sorted overflow level (the default).
    #[default]
    Calendar,
    /// The original global binary heap.
    Heap,
}

/// Width of one calendar bucket in microseconds. Most MAC timescales
/// (SIFS, slot times, CSMA defers, ACK timeouts) land within a few
/// buckets of `now`.
const BUCKET_WIDTH_US: u64 = 256;
/// Number of rotating buckets: the calendar's horizon is
/// `BUCKET_WIDTH_US * BUCKET_COUNT` ≈ 262 ms; anything scheduled
/// further out waits in the sorted overflow level.
const BUCKET_COUNT: usize = 1024;

/// The calendar level: rotating unsorted buckets over absolute time,
/// a sorted drain buffer for the window currently being dispatched,
/// and a heap-ordered overflow level beyond the calendar horizon.
#[derive(Debug)]
struct Calendar {
    /// Rotating buckets; index for `at_us` is
    /// `(at_us / BUCKET_WIDTH_US) % BUCKET_COUNT`. Unsorted.
    buckets: Vec<Vec<ScheduledEvent>>,
    /// Events in `buckets` (not counting `drain` or `overflow`).
    in_buckets: usize,
    /// Start of the bucket window currently being drained. Invariant:
    /// every pending event with `at_us < window_start + BUCKET_WIDTH_US`
    /// sits in `drain`.
    window_start: u64,
    /// Current window's events, sorted descending by (at_us, seq) so
    /// the earliest pops from the back.
    drain: Vec<ScheduledEvent>,
    /// Events beyond the calendar horizon at push time.
    overflow: BinaryHeap<ScheduledEvent>,
}

impl Calendar {
    fn new() -> Calendar {
        Calendar {
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            in_buckets: 0,
            window_start: 0,
            drain: Vec::new(),
            overflow: BinaryHeap::new(),
        }
    }

    fn horizon(&self) -> u64 {
        self.window_start + BUCKET_WIDTH_US * BUCKET_COUNT as u64
    }

    fn push(&mut self, ev: ScheduledEvent) {
        if ev.at_us < self.window_start + BUCKET_WIDTH_US {
            // Due within the current window (including pushes at `now`
            // mid-dispatch): insert into the sorted drain directly.
            let key = (ev.at_us, ev.seq);
            let pos = self.drain.partition_point(|e| (e.at_us, e.seq) > key);
            self.drain.insert(pos, ev);
        } else if ev.at_us < self.horizon() {
            let b = ((ev.at_us / BUCKET_WIDTH_US) as usize) % BUCKET_COUNT;
            self.buckets[b].push(ev);
            self.in_buckets += 1;
        } else {
            self.overflow.push(ev);
        }
    }

    /// Refills `drain` from the next non-empty window. Caller
    /// guarantees at least one event is pending somewhere.
    fn advance(&mut self) {
        debug_assert!(self.drain.is_empty());
        let mut scanned = 0usize;
        loop {
            self.window_start += BUCKET_WIDTH_US;
            if self.in_buckets == 0 {
                // Everything pending waits in the overflow: jump
                // straight to its head's window.
                let head_at = self.overflow.peek().expect("queue is non-empty").at_us;
                self.window_start = self
                    .window_start
                    .max(head_at / BUCKET_WIDTH_US * BUCKET_WIDTH_US);
            } else if scanned >= BUCKET_COUNT {
                // A full rotation of empty windows: every bucketed
                // event is at least one horizon out (it aliased into a
                // bucket ahead of its window). Jump to the earliest
                // pending time instead of scanning years of silence.
                let mut min_at = self.overflow.peek().map_or(u64::MAX, |e| e.at_us);
                for bucket in &self.buckets {
                    for e in bucket {
                        min_at = min_at.min(e.at_us);
                    }
                }
                self.window_start = self
                    .window_start
                    .max(min_at / BUCKET_WIDTH_US * BUCKET_WIDTH_US);
                scanned = 0;
            }
            let end = self.window_start + BUCKET_WIDTH_US;
            let b = ((self.window_start / BUCKET_WIDTH_US) as usize) % BUCKET_COUNT;
            let bucket = &mut self.buckets[b];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].at_us < end {
                    self.drain.push(bucket.swap_remove(i));
                    self.in_buckets -= 1;
                } else {
                    i += 1;
                }
            }
            while self.overflow.peek().is_some_and(|e| e.at_us < end) {
                self.drain.push(self.overflow.pop().expect("peeked"));
            }
            if !self.drain.is_empty() {
                self.drain
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at_us, e.seq)));
                return;
            }
            scanned += 1;
        }
    }
}

#[derive(Debug)]
enum Backend {
    Heap(BinaryHeap<ScheduledEvent>),
    Calendar(Calendar),
}

/// A deterministic time-ordered event queue: earliest first, FIFO among
/// equal times via the monotonic sequence number — the total order both
/// backends dispatch in.
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
    len: usize,
}

impl Default for EventQueue {
    fn default() -> EventQueue {
        EventQueue::new()
    }
}

impl EventQueue {
    /// An empty calendar-queue-backed queue (the default backend).
    pub fn new() -> EventQueue {
        EventQueue::with_scheduler(SchedulerKind::Calendar)
    }

    /// An empty queue on the chosen backend.
    pub fn with_scheduler(kind: SchedulerKind) -> EventQueue {
        let backend = match kind {
            SchedulerKind::Calendar => Backend::Calendar(Calendar::new()),
            SchedulerKind::Heap => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue {
            backend,
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `event` at `at_us`. Sequence numbers are assigned at
    /// push regardless of backend, so the dispatch order — and every
    /// RNG draw downstream of it — is backend-invariant.
    pub fn push(&mut self, at_us: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let ev = ScheduledEvent { at_us, seq, event };
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(ev),
            Backend::Calendar(cal) => cal.push(ev),
        }
    }

    /// Pops the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.pop(),
            Backend::Calendar(cal) => {
                if cal.drain.is_empty() {
                    cal.advance();
                }
                cal.drain.pop()
            }
        }
    }

    /// Time of the next event without removing it. `&mut` because the
    /// calendar backend may need to roll its window forward to find it.
    pub fn peek_time(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match &mut self.backend {
            Backend::Heap(heap) => heap.peek().map(|e| e.at_us),
            Backend::Calendar(cal) => {
                if cal.drain.is_empty() {
                    cal.advance();
                }
                cal.drain.last().map(|e| e.at_us)
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll(node: usize) -> Event {
        Event::Poll { node: NodeId(node) }
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(30, poll(0));
        q.push(10, poll(1));
        q.push(20, poll(2));
        assert_eq!(q.pop().unwrap().at_us, 10);
        assert_eq!(q.pop().unwrap().at_us, 20);
        assert_eq!(q.pop().unwrap().at_us, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(100, poll(i));
        }
        let mut order = Vec::new();
        while let Some(e) = q.pop() {
            if let Event::Poll { node } = e.event {
                order.push(node.0);
            }
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5, poll(0));
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn far_future_events_ride_the_overflow_level() {
        let mut q = EventQueue::new();
        // Well beyond the calendar horizon (~262 ms), plus a near event.
        q.push(10_000_000_000, poll(0));
        q.push(3_600_000_000, poll(1));
        q.push(100, poll(2));
        assert_eq!(q.pop().unwrap().at_us, 100);
        assert_eq!(q.pop().unwrap().at_us, 3_600_000_000);
        assert_eq!(q.pop().unwrap().at_us, 10_000_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_into_current_window_mid_drain_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(10, poll(0));
        q.push(20, poll(1));
        assert_eq!(q.pop().unwrap().at_us, 10);
        // The drain now holds {20}; a push due sooner must cut the line.
        q.push(15, poll(2));
        q.push(20, poll(3));
        assert_eq!(q.pop().unwrap().at_us, 15);
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        // FIFO among the two t=20 events.
        assert!((a.at_us, a.seq) < (b.at_us, b.seq));
        assert!(matches!(a.event, Event::Poll { node } if node.0 == 1));
        assert!(matches!(b.event, Event::Poll { node } if node.0 == 3));
    }

    /// The contract the whole determinism story rests on: both backends
    /// dispatch any interleaving of pushes and pops in the identical
    /// (time, seq) total order.
    #[test]
    fn calendar_matches_heap_on_random_interleavings() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut cal = EventQueue::with_scheduler(SchedulerKind::Calendar);
        let mut heap = EventQueue::with_scheduler(SchedulerKind::Heap);
        let mut now = 0u64;
        for round in 0..5_000u64 {
            let r = next();
            if r % 3 != 0 || cal.is_empty() {
                // Push: mostly near-future, occasionally far beyond the
                // horizon, with plenty of exact ties.
                let dt = match r % 7 {
                    0 => 0,
                    1..=4 => next() % 2_000,
                    5 => next() % 50_000,
                    _ => 300_000 + next() % 2_000_000_000,
                };
                cal.push(now + dt, poll(round as usize));
                heap.push(now + dt, poll(round as usize));
            } else {
                let (a, b) = (cal.pop(), heap.pop());
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!((x.at_us, x.seq), (y.at_us, y.seq), "round {round}");
                        assert!(x.at_us >= now, "time went backwards");
                        now = x.at_us;
                    }
                    (None, None) => {}
                    _ => panic!("one backend drained before the other"),
                }
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time(), "round {round}");
        }
        while let Some(x) = cal.pop() {
            let y = heap.pop().expect("same length");
            assert_eq!((x.at_us, x.seq), (y.at_us, y.seq));
        }
        assert!(heap.pop().is_none());
    }
}
