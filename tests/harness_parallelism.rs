//! Worker-count invariance: parallel execution is a pure optimisation.
//!
//! The harness contract is that `--workers N` changes wall-clock time and
//! nothing else — every derived artifact (scan reports, metric ledgers,
//! serialized JSON) must be byte-identical across worker counts. These
//! tests pin that contract at the root, across the scanner and the
//! Monte-Carlo runner, plus the seed-derivation property it rests on.

use polite_wifi::core::WardriveScanner;
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::frame::{builder, MacAddr};
use polite_wifi::harness::{derive_trial_seed, MetricsLedger, Runner, ScenarioBuilder};
use polite_wifi::obs::metrics::Histogram;
use polite_wifi::obs::Obs;
use polite_wifi::phy::rate::BitRate;
use proptest::prelude::*;

fn small_city() -> CityPopulation {
    let full = CityPopulation::table2(9);
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(150).cloned().collect();
    CityPopulation {
        devices,
        registry: full.registry.clone(),
    }
}

#[test]
fn scan_report_is_byte_identical_across_worker_counts() {
    let city = small_city();
    let scanner = WardriveScanner {
        segment_size: 9,
        dwell_us: 1_500_000,
        ..WardriveScanner::default()
    };
    let sequential = scanner.run_sharded(&city, 1);
    assert!(sequential.discovered > 0, "empty survey proves nothing");
    let seq_json = serde_json::to_string(&sequential).unwrap();
    for workers in [2, 4, 7] {
        let parallel = scanner.run_sharded(&city, workers);
        assert_eq!(sequential, parallel, "report differs at {workers} workers");
        assert_eq!(
            seq_json,
            serde_json::to_string(&parallel).unwrap(),
            "serialized report differs at {workers} workers"
        );
    }
}

#[test]
fn trial_metrics_are_byte_identical_across_worker_counts() {
    // A multi-seed Monte-Carlo run through the scenario layer: each trial
    // stamps a fresh simulator, runs the core attack, and reports its
    // ledger. Merging in trial order must erase the scheduling.
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sb = ScenarioBuilder::new().duration_us(400_000);
    let ap = sb.access_point("68:02:b8:00:00:01".parse().unwrap(), "Net", (2.0, 0.0));
    let victim = sb.client(victim_mac, (0.0, 0.0));
    let attacker = sb.monitor(MacAddr::FAKE, (6.0, 0.0));
    sb.link(victim, ap);

    let run_with = |workers: usize| {
        let ledgers = Runner::new(workers).run_trials(77, 12, |trial| {
            let mut scenario = sb.build_with_seed(trial.seed);
            for i in 0..4u64 {
                scenario.sim.inject(
                    10_000 + i * 50_000,
                    attacker,
                    builder::fake_null_frame(victim_mac, MacAddr::FAKE),
                    BitRate::Mbps1,
                );
            }
            scenario.run();
            let mut ledger = MetricsLedger::new();
            scenario.tap_activity(victim, &mut ledger, "victim");
            ledger.record(
                "acks_sent",
                scenario.sim.station(victim).stats.acks_sent as f64,
            );
            ledger
        });
        let mut merged = MetricsLedger::new();
        for ledger in &ledgers {
            merged.merge(ledger);
        }
        serde_json::to_string(&merged.summaries()).unwrap()
    };

    let sequential = run_with(1);
    assert!(sequential.contains("acks_sent"));
    assert_eq!(sequential, run_with(4), "4-worker ledger differs");
    assert_eq!(sequential, run_with(16), "16-worker ledger differs");
}

#[test]
fn obs_metrics_snapshot_is_byte_identical_across_worker_counts() {
    // The observability scope rides the same contract: per-trial Obs
    // snapshots absorbed in trial order must serialise byte-identically
    // no matter how many workers ran the trials.
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sb = ScenarioBuilder::new().duration_us(400_000);
    let ap = sb.access_point("68:02:b8:00:00:01".parse().unwrap(), "Net", (2.0, 0.0));
    let victim = sb.client(victim_mac, (0.0, 0.0));
    let attacker = sb.monitor(MacAddr::FAKE, (6.0, 0.0));
    sb.link(victim, ap);

    let run_with = |workers: usize| {
        let snapshots = Runner::new(workers).run_trials(77, 12, |trial| {
            let mut scenario = sb.build_with_seed(trial.seed);
            for i in 0..4u64 {
                scenario.sim.inject(
                    10_000 + i * 50_000,
                    attacker,
                    builder::fake_null_frame(victim_mac, MacAddr::FAKE),
                    BitRate::Mbps1,
                );
            }
            scenario.run();
            scenario.observe_activity(victim, "power.victim");
            scenario.sim.take_obs()
        });
        let mut merged = Obs::new();
        for (index, snapshot) in snapshots.iter().enumerate() {
            merged.absorb(snapshot, index as u64);
        }
        merged.metrics_json()
    };

    let sequential = run_with(1);
    assert!(
        sequential.contains("mac.acks_scheduled"),
        "scenario produced no MAC activity:\n{sequential}"
    );
    assert!(sequential.contains("power.victim.sleep_us"));
    assert_eq!(sequential, run_with(2), "2-worker obs snapshot differs");
    assert_eq!(sequential, run_with(8), "8-worker obs snapshot differs");
}

proptest! {
    /// Histogram merge is associative: fold order must not change the
    /// result, or absorbing per-trial snapshots in trial order would not
    /// be enough to erase worker scheduling.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..24),
        b in proptest::collection::vec(any::<u64>(), 0..24),
        c in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let hist = |values: &[u64]| {
            let mut h = Histogram::new();
            for &v in values {
                h.observe(v);
            }
            h
        };
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        // And merging is order-independent (commutative), so even a
        // scheduler that merged out of order would converge.
        let mut ba = hb.clone();
        ba.merge(&ha);
        ba.merge(&hc);
        prop_assert_eq!(&left, &ba);

        // The merged histogram agrees with observing everything in one go.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &hist(&all));
    }

    /// The per-trial seed derivation never collides within a run: for any
    /// base seed, distinct trial indices must get distinct seeds, or two
    /// trials would silently share a random stream.
    #[test]
    fn derived_trial_seeds_never_collide(
        base in any::<u64>(),
        i in 0u64..100_000,
        j in 0u64..100_000,
    ) {
        prop_assume!(i != j);
        prop_assert_ne!(derive_trial_seed(base, i), derive_trial_seed(base, j));
    }

    /// Trial 0 of base seed S is the sequential run of seed S — the
    /// Monte-Carlo extension of an experiment keeps its published
    /// single-run numbers.
    #[test]
    fn trial_zero_preserves_the_base_seed(base in any::<u64>()) {
        prop_assert_eq!(derive_trial_seed(base, 0), base);
    }
}
