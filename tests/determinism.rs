//! Reproducibility: every experiment is a pure function of its seed.
//!
//! This is a substrate-level guarantee the whole evaluation rests on —
//! EXPERIMENTS.md quotes numbers that must regenerate bit-for-bit.

use polite_wifi::core::{BatteryDrainAttack, KeystrokeAttack, SensingHub, WardriveScanner};
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::sensing::MotionScript;

#[test]
fn drain_attack_is_deterministic() {
    let run = || {
        BatteryDrainAttack {
            rate_pps: 150,
            warmup_us: 1_000_000,
            measure_us: 3_000_000,
            seed: 11,
            ..BatteryDrainAttack::default()
        }
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn keystroke_attack_is_deterministic() {
    let a = KeystrokeAttack::figure5(13).run();
    let b = KeystrokeAttack::figure5(13).run();
    assert_eq!(a.amplitudes, b.amplitudes);
    assert_eq!(a.keystroke_score, b.keystroke_score);
    // ...and a different seed gives a different channel realisation.
    let c = KeystrokeAttack::figure5(14).run();
    assert_ne!(a.amplitudes, c.amplitudes);
}

#[test]
fn survey_is_deterministic() {
    let full = CityPopulation::table2(3);
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(200).cloned().collect();
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };
    let scanner = WardriveScanner {
        segment_size: 14,
        dwell_us: 1_500_000,
        ..WardriveScanner::default()
    };
    let a = scanner.run(&slice);
    let b = scanner.run(&slice);
    assert_eq!(a, b);
}

#[test]
fn sensing_hub_is_deterministic() {
    let scripts = vec![MotionScript::walk_by(10_000_000, 4_000_000, 6_000_000)];
    let hub = SensingHub {
        rate_pps_per_target: 150,
        subcarrier: 17,
        seed: 21,
    };
    assert_eq!(hub.run(&scripts), hub.run(&scripts));
}

#[test]
fn population_is_deterministic_but_seed_sensitive() {
    let a = CityPopulation::table2(1);
    let b = CityPopulation::table2(1);
    let c = CityPopulation::table2(2);
    assert_eq!(a.devices, b.devices);
    // Same marginals, different sampled details.
    assert_eq!(a.devices.len(), c.devices.len());
    assert_ne!(
        a.devices.iter().map(|d| d.channel).collect::<Vec<_>>(),
        c.devices.iter().map(|d| d.channel).collect::<Vec<_>>()
    );
}
