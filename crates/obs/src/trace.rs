//! Chrome-trace (Perfetto) exporter.
//!
//! Serialises a span log and ring buffer into the JSON Trace Event
//! Format understood by `chrome://tracing` and <https://ui.perfetto.dev>:
//! an object with a `traceEvents` array of complete (`"ph":"X"`) and
//! instant (`"ph":"i"`) events. Timestamps are **virtual** simulation
//! microseconds (the unit the format expects), so a trace of a
//! deterministic run is itself deterministic. Groups (trial indices)
//! map to `pid` and tracks (node ids) to `tid`, giving each trial a
//! process lane with one row per node.

use crate::json::JsonWriter;
use crate::ring::RingLog;
use crate::span::SpanLog;

/// Renders a complete Chrome-trace JSON document.
pub fn chrome_trace_json(spans: &SpanLog, ring: &RingLog) -> String {
    let mut w = JsonWriter::new();
    w.begin_object().key("traceEvents").begin_array();
    for span in spans.spans() {
        w.begin_object()
            .key("name")
            .string(&span.name)
            .key("cat")
            .string(category(&span.name))
            .key("ph")
            .string("X")
            .key("ts")
            .u64(span.start_us)
            .key("dur")
            .u64(span.dur_us)
            .key("pid")
            .u64(span.group)
            .key("tid")
            .u64(span.track)
            .end_object();
    }
    for event in ring.events() {
        w.begin_object()
            .key("name")
            .string(&event.label)
            .key("cat")
            .string(category(&event.label))
            .key("ph")
            .string("i")
            .key("ts")
            .u64(event.ts_us)
            .key("s")
            .string("t")
            .key("pid")
            .u64(0)
            .key("tid")
            .u64(event.track)
            .end_object();
    }
    w.end_array()
        .key("displayTimeUnit")
        .string("ns")
        .key("otherData")
        .begin_object()
        .key("spans_dropped")
        .u64(spans.dropped)
        .key("events_evicted")
        .u64(ring.evicted)
        .end_object()
        .end_object();
    w.finish()
}

/// Category for the trace viewer's filter box: the metric-name prefix up
/// to the first `.` (`frame.exchange` → `frame`).
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::span::SpanRecord;

    #[test]
    fn trace_document_is_valid_and_complete() {
        let mut spans = SpanLog::new(8);
        spans.push(SpanRecord {
            name: "frame.exchange".to_string(),
            track: 2,
            group: 1,
            start_us: 10_000,
            dur_us: 358,
        });
        let mut ring = RingLog::new(8);
        ring.record(10_400, 2, "ack.timeout");

        let doc = chrome_trace_json(&spans, &ring);
        let parsed = parse(&doc).expect("exporter must emit valid JSON");
        let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(10_000.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(358.0));
        assert_eq!(events[0].get("cat").unwrap().as_str(), Some("frame"));
        assert_eq!(events[0].get("pid").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("tid").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("ack.timeout"));
    }
}
