//! Keystroke burst detection — the privacy threat of Section 4.1.
//!
//! WindTalker-style attacks recover *which* keys are pressed from CSI
//! waveform shapes; that last step needs per-victim training data the
//! paper explicitly leaves out of scope. What the paper demonstrates —
//! and what this module reproduces — is the upstream signal: individual
//! keystrokes are visible as short bursts in the ACK-CSI stream of an
//! unassociated victim.

use crate::filter;
use serde::{Deserialize, Serialize};

/// A detected keystroke event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeEvent {
    /// Sample index of the burst peak.
    pub index: usize,
    /// Peak burst score (first-difference magnitude, smoothed).
    pub score: f64,
}

/// Detector parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeystrokeDetectorConfig {
    /// Smoothing half-window applied to the burst score.
    pub smooth_half_window: usize,
    /// Score threshold as a multiple of the score's median.
    pub threshold_factor: f64,
    /// Minimum gap between detected keystrokes, in samples. At 150 Hz and
    /// ~4 keys/s this is ≈ 37 samples; default is deliberately tighter.
    pub refractory: usize,
}

impl Default for KeystrokeDetectorConfig {
    fn default() -> Self {
        KeystrokeDetectorConfig {
            smooth_half_window: 3,
            threshold_factor: 4.0,
            refractory: 20,
        }
    }
}

/// Detects keystroke bursts in a (typing-phase) CSI amplitude series.
pub fn detect_keystrokes(series: &[f64], config: &KeystrokeDetectorConfig) -> Vec<KeystrokeEvent> {
    if series.len() < 8 {
        return Vec::new();
    }
    // Burst score: smoothed magnitude of the first difference. Under the
    // fast policies the diff uses the lane-chunked kernel (elementwise,
    // exact) and the threshold median is selected in O(n) instead of
    // sorted — same values either way.
    let scalar = crate::batch::BatchPolicy::active() == crate::batch::BatchPolicy::Scalar;
    let conditioned = filter::condition(series);
    let diffs: Vec<f64> = if scalar {
        conditioned
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .collect()
    } else {
        crate::batch::abs_diff(&conditioned)
    };
    let score = filter::moving_average(&diffs, config.smooth_half_window);
    let median = if scalar {
        filter::median(&score)
    } else {
        crate::batch::median_select(&score)
    };
    let threshold = median.max(1e-9) * config.threshold_factor;

    // Peak-pick above threshold with a refractory period.
    let mut events = Vec::new();
    let mut i = 0;
    while i < score.len() {
        if score[i] >= threshold {
            // Find the local peak of this burst.
            let mut peak = i;
            let mut j = i;
            while j < score.len() && score[j] >= threshold {
                if score[j] > score[peak] {
                    peak = j;
                }
                j += 1;
            }
            events.push(KeystrokeEvent {
                index: peak,
                score: score[peak],
            });
            i = (peak + config.refractory).max(j);
        } else {
            i += 1;
        }
    }
    events
}

/// Scores detections against ground-truth keystroke sample indices:
/// a detection within `tolerance` samples of a truth index is a hit.
/// Returns `(hits, misses, false_alarms)`.
pub fn score_detections(
    detected: &[KeystrokeEvent],
    truth: &[usize],
    tolerance: usize,
) -> (usize, usize, usize) {
    let mut used = vec![false; detected.len()];
    let mut hits = 0;
    for &t in truth {
        let found = detected
            .iter()
            .enumerate()
            .position(|(i, e)| !used[i] && e.index.abs_diff(t) <= tolerance);
        if let Some(i) = found {
            used[i] = true;
            hits += 1;
        }
    }
    let misses = truth.len() - hits;
    let false_alarms = used.iter().filter(|&&u| !u).count();
    (hits, misses, false_alarms)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic noise in [-0.5, 0.5).
    fn noise(i: usize) -> f64 {
        ((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5
    }

    /// A synthetic typing series: calm baseline with bursts at `keys`.
    fn typing_series(len: usize, keys: &[usize]) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut v = 5.0 + 0.01 * noise(i);
                for &k in keys {
                    if i >= k && i < k + 10 {
                        v += 0.9 * noise(i * 13 + k);
                    }
                }
                v
            })
            .collect()
    }

    #[test]
    fn detects_all_separated_keystrokes() {
        let keys = [100, 200, 300, 400, 500];
        let series = typing_series(700, &keys);
        let events = detect_keystrokes(&series, &KeystrokeDetectorConfig::default());
        let (hits, misses, fa) = score_detections(&events, &keys, 15);
        assert_eq!(misses, 0, "events: {events:?}");
        assert_eq!(hits, 5);
        assert!(fa <= 1, "false alarms {fa}");
    }

    #[test]
    fn quiet_series_yields_nothing_catastrophic() {
        let series: Vec<f64> = (0..500).map(|i| 5.0 + 0.01 * noise(i)).collect();
        let events = detect_keystrokes(&series, &KeystrokeDetectorConfig::default());
        // Pure noise may trip the relative threshold occasionally, but
        // should not produce anything like a typing cadence.
        assert!(events.len() <= 3, "events {}", events.len());
    }

    #[test]
    fn refractory_merges_double_peaks() {
        let keys = [100];
        let series = typing_series(300, &keys);
        let events = detect_keystrokes(&series, &KeystrokeDetectorConfig::default());
        assert!(events.len() <= 2, "one keystroke split into {events:?}");
    }

    #[test]
    fn scoring_counts_false_alarms() {
        let detected = vec![
            KeystrokeEvent {
                index: 100,
                score: 1.0,
            },
            KeystrokeEvent {
                index: 400,
                score: 1.0,
            },
        ];
        let truth = [102];
        let (hits, misses, fa) = score_detections(&detected, &truth, 10);
        assert_eq!((hits, misses, fa), (1, 0, 1));
    }

    #[test]
    fn short_series_is_safe() {
        assert!(detect_keystrokes(&[1.0; 4], &KeystrokeDetectorConfig::default()).is_empty());
    }
}
