//! Single-device WiFi sensing (§4.3): one modified IoT hub senses motion
//! near three *unmodified* neighbour devices through their ACK CSI.
//!
//! ```sh
//! cargo run --release --example sensing_hub
//! ```

use polite_wifi::core::SensingHub;
use polite_wifi::sensing::MotionScript;

fn main() {
    let duration = 30_000_000; // 30 s
                               // Ground truth: someone walks past target 0 at 8 s and target 2 at
                               // 20 s; nothing happens near target 1.
    let scripts = vec![
        MotionScript::walk_by(duration, 8_000_000, 10_000_000),
        MotionScript::idle(duration),
        MotionScript::walk_by(duration, 20_000_000, 22_000_000),
    ];

    println!("One hub, three unmodified neighbours, 150 fake frames/s each...\n");
    let hub = SensingHub::default();
    let report = hub.run(&scripts);

    println!(
        "devices with modified software: {}   devices participating: {}\n",
        report.devices_modified, report.devices_participating
    );
    for (i, t) in report.targets.iter().enumerate() {
        print!("target {} ({})  {} CSI samples  → ", i, t.target, t.samples);
        if t.motion_windows_us.is_empty() {
            println!("no motion detected");
        } else {
            let windows: Vec<String> = t
                .motion_windows_us
                .iter()
                .map(|(s, e)| format!("{:.1}–{:.1} s", *s as f64 / 1e6, *e as f64 / 1e6))
                .collect();
            println!("motion at {}", windows.join(", "));
        }
    }

    assert!(!report.targets[0].motion_windows_us.is_empty());
    assert!(report.targets[1].motion_windows_us.is_empty());
    assert!(!report.targets[2].motion_windows_us.is_empty());
    println!(
        "\nClassical WiFi sensing would have required software changes on \
         every device; Polite WiFi needed exactly one."
    );
}
