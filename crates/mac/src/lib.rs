//! 802.11 MAC state machines — where Polite WiFi lives.
//!
//! The central type is [`Station`], an event-driven (smoltcp-style) state
//! machine. Its receive path implements the order of operations the paper
//! identifies as the root cause of Polite WiFi:
//!
//! 1. FCS check (PHY) — corrupt frames are ignored entirely;
//! 2. receiver-address match — frames for others are ignored;
//! 3. **ACK scheduled at SIFS** (or CTS for an RTS) — *before* any
//!    higher-layer validation, because SIFS (10–16 µs) is far too short to
//!    decrypt anything (see `polite_wifi_phy::timing`);
//! 4. only then do "higher layers" run: duplicate detection, association
//!    checks, 802.11w PMF — and when they reject the frame, the ACK has
//!    already been transmitted.
//!
//! [`behavior::Behavior`] captures the per-device quirks the paper
//! observed: APs that answer fakes with deauthentication bursts yet still
//! ACK (Figure 3), MAC blocklists that provably cannot stop the ACK, PMF
//! networks whose *control* frames stay unprotected, and the power-save
//! logic the battery-drain attack abuses (Figure 6).
//!
//! [`csma`] implements DCF channel access (DIFS + binary exponential
//! backoff) for contending transmitters, and [`dedup`] the receiver
//! duplicate cache.

pub mod actions;
pub mod behavior;
pub mod csma;
pub mod dedup;
pub mod fragment;
pub mod obs;
pub mod rate_control;
pub mod station;

pub use actions::{DiscardReason, MacAction, RadioState};
pub use behavior::{Behavior, PowerSave};
pub use station::{JoinState, Role, Station, StationConfig};
