//! X1 — extension: the paper's open questions of §4.1, answered on the
//! synthetic channel — breathing-rate estimation and occupancy detection
//! from elicited ACK CSI.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::VitalSignsAttack;
use polite_wifi_harness::{Experiment, RunArgs};
use polite_wifi_phy::csi::CsiChannel;
use polite_wifi_sensing::occupancy::{detect_occupancy, OccupancyConfig};
use polite_wifi_sensing::MotionScript;
use serde::Serialize;

#[derive(Serialize)]
struct VitalsJson {
    breathing: Vec<polite_wifi_core::VitalSignsResult>,
    occupancy_truth: Vec<bool>,
    occupancy_detected: Vec<bool>,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    // --- Breathing --- (three independent subjects, fanned over the pool)
    println!("\n-- breathing-rate recovery from a victim's ACK stream --\n");
    let seed = exp.seed();
    let faults = exp.args().faults;
    let cases = [12.0f64, 16.0, 22.0];
    let breathing = exp.runner().run_indexed(cases.len(), |i| {
        VitalSignsAttack {
            true_bpm: cases[i],
            duration_us: 60_000_000,
            seed: seed + i as u64,
            faults,
            ..VitalSignsAttack::default()
        }
        .run()
    });
    for result in &breathing {
        exp.obs.add("sensing.csi_samples", result.samples as u64);
    }
    for (true_bpm, result) in cases.iter().zip(&breathing) {
        let Some(est) = result.estimate.as_ref() else {
            assert!(!faults.is_clean(), "clean series must be long enough");
            println!(
                "true {true_bpm:>5.1} bpm → no estimate ({} samples under faults)",
                result.samples
            );
            continue;
        };
        println!(
            "true {true_bpm:>5.1} bpm → estimated {:>5.1} bpm (confidence {:>5.1}, {} samples)",
            est.bpm, est.confidence, result.samples
        );
        if faults.is_clean() {
            assert!((est.bpm - true_bpm).abs() <= 1.0, "estimate off: {est:?}");
        }
        exp.metrics
            .record("bpm_abs_error", (est.bpm - true_bpm).abs());
    }
    compare(
        "breathing rate recoverable",
        "open question",
        "yes, ±0.5 bpm on this channel",
    );

    // --- Occupancy ---
    println!("\n-- occupancy detection near an unmodified device --\n");
    // 40 s: empty (0–16 s), occupied (16–32 s), empty again.
    let duration = 40_000_000u64;
    let mut script = MotionScript::idle(duration);
    script.phases = vec![
        polite_wifi_sensing::Phase {
            start_us: 0,
            end_us: 16_000_000,
            label: "idle".into(),
            intensity: 0.0,
        },
        polite_wifi_sensing::Phase {
            start_us: 16_000_000,
            end_us: 32_000_000,
            label: "walk".into(),
            intensity: 0.5,
        },
        polite_wifi_sensing::Phase {
            start_us: 32_000_000,
            end_us: duration,
            label: "idle".into(),
            intensity: 0.0,
        },
    ];
    // 150 Hz CSI stream for the script.
    let mut ch = CsiChannel::new(77);
    let mut amplitudes = Vec::new();
    let mut t = 0u64;
    while t < duration {
        amplitudes.push(ch.sample(script.intensity_at(t)).amplitude(17));
        t += 6_667;
    }
    let intervals = detect_occupancy(&amplitudes, &OccupancyConfig::default());
    let mut truth = Vec::new();
    let mut detected = Vec::new();
    for iv in &intervals {
        let mid_us = (iv.start as u64 + (iv.end - iv.start) as u64 / 2) * 6_667;
        let occupied_truth = script.intensity_at(mid_us) > 0.1;
        truth.push(occupied_truth);
        detected.push(iv.occupied);
        println!(
            "{:>5.1}–{:<5.1}s  activity {:>5.1}%  → {:<8}  (truth: {})",
            iv.start as f64 * 6.667e-3,
            iv.end as f64 * 6.667e-3,
            iv.activity_fraction * 100.0,
            if iv.occupied { "OCCUPIED" } else { "vacant" },
            if occupied_truth { "occupied" } else { "vacant" }
        );
    }
    let correct = truth.iter().zip(&detected).filter(|(t, d)| t == d).count();
    println!();
    compare(
        "occupancy detectable",
        "open question",
        &format!("{correct}/{} intervals correct", truth.len()),
    );
    assert_eq!(correct, truth.len(), "occupancy misclassification");

    exp.finish_with_status(
        &spec.slug,
        &VitalsJson {
            breathing,
            occupancy_truth: truth,
            occupancy_detected: detected,
        },
    )
}
