//! The daemon: accept loop, bounded worker pool, supervisor and drain.
//!
//! Concurrency layout (all plain std threads):
//!
//! * one **accept** thread, spawning a short-lived handler thread per
//!   connection (requests are tiny; `wait=1` submits block their own
//!   handler thread, never the pool);
//! * `workers` **job** threads pulling from one bounded queue;
//! * one **supervisor** thread that raises cancellation tokens on jobs
//!   past their deadline and releases delayed retries back to the pool.
//!
//! All shared state lives behind a single `Mutex<State>` + `Condvar`
//! pair; the metrics scope has its own lock and the two are never held
//! together. See DESIGN.md §14 for the job state machine and the drain
//! contract.

use crate::cache::{CacheRead, ResultStore};
use crate::http::{read_request, Request, Response};
use crate::jobs::{Job, JobState};
use crate::watch;
use polite_wifi_core::retry::RetryPolicy;
use polite_wifi_harness::progress::set_thread_progress_sink;
use polite_wifi_harness::{cancel, CancelToken, ChannelProgress, ProgressSink};
use polite_wifi_obs::events::{EventHub, ProgressEvent, TimeSeries};
use polite_wifi_obs::{names, Obs, OpenMetricsWriter};
use polite_wifi_scenario::{fnv1a64, run_spec, ScenarioSpec};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `polite-wifi-d` is configured by.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub bind: String,
    /// Job worker threads (not per-job trial workers — each job brings
    /// its own `run.workers` from the spec).
    pub workers: usize,
    /// Queued-job bound; submissions past it are rejected with 429.
    pub queue_depth: usize,
    /// Per-attempt wall-clock deadline.
    pub job_timeout: Duration,
    /// Failed attempts are retried at most this many times.
    pub retry_max: u32,
    /// Backoff shape for those retries (delays are deterministic in
    /// (key, attempt), like every other schedule in this workspace).
    pub retry_policy: RetryPolicy,
    /// Result store + per-job scratch directories live here.
    pub state_dir: PathBuf,
    /// Per-job flight-recorder capacity (events). Overflow sheds the
    /// oldest events, counted in `progress.events_shed`.
    pub journal_capacity: usize,
    /// `/metrics/history` ring capacity (windows).
    pub history_capacity: usize,
    /// How often the supervisor samples daemon counters into the
    /// history ring.
    pub history_window: Duration,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            job_timeout: Duration::from_secs(300),
            retry_max: 0,
            retry_policy: RetryPolicy::default(),
            state_dir: PathBuf::from("daemon-state"),
            journal_capacity: 4096,
            history_capacity: 256,
            history_window: Duration::from_secs(1),
        }
    }
}

struct State {
    jobs: BTreeMap<u64, Job>,
    /// Queued job ids, submission order. Entries may carry a
    /// `not_before` retry gate; workers skip those until due.
    queue: VecDeque<u64>,
    /// Cacheable (non-injected) non-terminal job per content key —
    /// identical in-flight submissions coalesce onto this.
    inflight: HashMap<String, u64>,
    next_id: u64,
    running: usize,
}

struct Shared {
    config: DaemonConfig,
    store: ResultStore,
    state: Mutex<State>,
    cv: Condvar,
    obs: Mutex<Obs>,
    /// Per-window counter deltas for `/metrics/history`, sampled by the
    /// supervisor every `config.history_window`.
    history: Mutex<TimeSeries>,
    /// Live `/watch` subscriber connections (reported on `/healthz`).
    subscribers: AtomicU64,
    /// Process start, for `/healthz` uptime and history timestamps.
    started: Instant,
    draining: AtomicBool,
    shutdown: AtomicBool,
    shutdown_requested: AtomicBool,
}

impl Shared {
    fn incr(&self, name: &str) {
        self.obs.lock().unwrap().incr(name);
    }

    fn add(&self, name: &str, n: u64) {
        self.obs.lock().unwrap().add(name, n);
    }

    fn observe(&self, name: &str, value: u64) {
        self.obs.lock().unwrap().observe(name, value);
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// A running daemon instance. Dropping it without calling
/// [`drain`](Daemon::drain) aborts the threads with the process.
pub struct Daemon {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, spawns the pool and starts serving.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        std::fs::create_dir_all(&config.state_dir)?;
        let store = ResultStore::new(config.state_dir.join("store"));
        let worker_count = config.workers.max(1);
        let history = TimeSeries::new(config.history_capacity);
        let shared = Arc::new(Shared {
            config,
            store,
            state: Mutex::new(State {
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                inflight: HashMap::new(),
                next_id: 1,
                running: 0,
            }),
            cv: Condvar::new(),
            obs: Mutex::new(Obs::new()),
            history: Mutex::new(history),
            subscribers: AtomicU64::new(0),
            started: Instant::now(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || supervisor_loop(shared))
        };
        Ok(Daemon {
            shared,
            addr,
            accept: Some(accept),
            workers,
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether `POST /shutdown` (or a signal relayed by the binary) has
    /// asked this daemon to drain.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Stops admitting work immediately; already-admitted jobs keep
    /// running. Idempotent.
    pub fn initiate_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
    }

    /// Graceful shutdown: reject new submissions, let every admitted
    /// job reach a terminal state, persist the job table to
    /// `state_dir/jobs.json`, then stop the threads. Returns the number
    /// of jobs that were still in flight when the drain began.
    pub fn drain(mut self) -> io::Result<usize> {
        self.initiate_drain();
        let t0 = Instant::now();
        let inflight_at_drain;
        {
            let mut st = self.shared.state.lock().unwrap();
            inflight_at_drain = st.queue.len() + st.running;
            while !(st.queue.is_empty() && st.running == 0) {
                let (guard, _) = self
                    .shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(20))
                    .unwrap();
                st = guard;
            }
        }
        self.persist_jobs()?;
        self.shared
            .observe(names::DAEMON_DRAIN_WALL_MS, t0.elapsed().as_millis() as u64);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        // The accept loop blocks in accept(); poke it awake so it can
        // observe the shutdown flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
        Ok(inflight_at_drain)
    }

    /// Writes the job table (status documents, submission order) to
    /// `state_dir/jobs.json`, and each job's flight-recorder journal to
    /// `state_dir/events/<id>.json`, so a drained daemon leaves a
    /// replayable audit trail — not just final states but how each job
    /// got there.
    fn persist_jobs(&self) -> io::Result<()> {
        let now = Instant::now();
        let st = self.shared.state.lock().unwrap();
        let mut out = String::from("[\n");
        let mut journals = Vec::new();
        for (i, job) in st.jobs.values().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            out.push_str(&job.status_json(now, None));
            journals.push((job.id, job.recorder.hub()));
        }
        out.push_str("\n]\n");
        drop(st);
        std::fs::write(self.shared.config.state_dir.join("jobs.json"), out)?;
        let events_dir = self.shared.config.state_dir.join("events");
        if !journals.is_empty() {
            std::fs::create_dir_all(&events_dir)?;
        }
        for (id, hub) in journals {
            std::fs::write(events_dir.join(format!("{id}.json")), hub.to_json())?;
            self.shared.incr(names::DAEMON_JOURNAL_PERSISTED);
        }
        Ok(())
    }

    /// Current value of one daemon counter (test/bench introspection
    /// without scraping `/metrics`).
    pub fn counter(&self, name: &str) -> u64 {
        self.shared.obs.lock().unwrap().counters.get(name)
    }
}

// ===== accept / routing =====

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || handle_connection(stream, shared));
    }
}

fn handle_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let req = match read_request(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            let _ = Response::json(400, format!("{{\"error\": \"{e}\"}}")).write_to(&mut stream);
            return;
        }
    };
    // `/watch` streams on the raw socket (chunked SSE); everything else
    // is a one-shot Response.
    if req.method == "GET" && req.path.starts_with("/watch/") {
        handle_watch(stream, &req, &shared);
        return;
    }
    let _ = route(&req, &shared).write_to(&mut stream);
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => handle_submit(req, shared),
        ("GET", "/metrics") => handle_metrics(shared),
        ("GET", "/metrics/history") => {
            Response::json(200, shared.history.lock().unwrap().to_json())
        }
        ("GET", "/healthz") => handle_healthz(shared),
        ("POST", "/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::SeqCst);
            shared.draining.store(true, Ordering::SeqCst);
            shared.cv.notify_all();
            Response::text(200, "draining\n")
        }
        ("GET", path) if path.starts_with("/jobs/") && path.ends_with("/events") => {
            handle_job_events(path, shared)
        }
        ("GET", path) if path.starts_with("/jobs/") => handle_job_status(path, shared),
        ("GET", path) if path.starts_with("/results/") => handle_result(path, shared),
        ("GET" | "POST", _) => Response::json(404, "{\"error\": \"no such route\"}".to_string()),
        _ => Response::json(405, "{\"error\": \"method not allowed\"}".to_string()),
    }
}

/// `/healthz`: liveness phase plus identity — uptime, build version
/// and the live `/watch` subscriber count, so load balancers and smoke
/// tests can assert which daemon they reached, not just that *a*
/// daemon answered.
fn handle_healthz(shared: &Arc<Shared>) -> Response {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        format!(
            "{{\"status\": \"{status}\", \"uptime_secs\": {}, \"version\": \"{}\", \
             \"subscribers\": {}}}",
            shared.started.elapsed().as_secs(),
            env!("CARGO_PKG_VERSION"),
            shared.subscribers.load(Ordering::SeqCst),
        ),
    )
}

fn handle_metrics(shared: &Arc<Shared>) -> Response {
    let obs = shared.obs.lock().unwrap();
    let mut writer = OpenMetricsWriter::new();
    writer.scope(&obs.counters, &obs.histograms, "");
    drop(obs);
    Response {
        status: 200,
        content_type: "application/openmetrics-text; version=1.0.0; charset=utf-8",
        headers: Vec::new(),
        body: writer.finish().into_bytes(),
    }
}

fn handle_job_status(path: &str, shared: &Arc<Shared>) -> Response {
    let id = match path["/jobs/".len()..].parse::<u64>() {
        Ok(id) => id,
        Err(_) => return Response::json(400, "{\"error\": \"bad job id\"}".to_string()),
    };
    let st = shared.state.lock().unwrap();
    match st.jobs.get(&id) {
        Some(job) => {
            // Queue position only means something while queued: 0 = the
            // next job a free worker will pick up.
            let position = if job.state == JobState::Queued {
                st.queue.iter().position(|&q| q == id).map(|p| p as u64)
            } else {
                None
            };
            Response::json(200, job.status_json(Instant::now(), position))
        }
        None => Response::json(404, "{\"error\": \"no such job\"}".to_string()),
    }
}

/// `/jobs/<id>/events`: the recorded flight-recorder journal as a JSON
/// array — replayable after the job completed, unlike the live
/// `/watch` stream.
fn handle_job_events(path: &str, shared: &Arc<Shared>) -> Response {
    let middle = &path["/jobs/".len()..path.len() - "/events".len()];
    let id = match middle.parse::<u64>() {
        Ok(id) => id,
        Err(_) => return Response::json(400, "{\"error\": \"bad job id\"}".to_string()),
    };
    let hub = {
        let st = shared.state.lock().unwrap();
        st.jobs.get(&id).map(|job| job.recorder.hub())
    };
    match hub {
        Some(hub) => Response::json(200, hub.to_json()),
        None => Response::json(404, "{\"error\": \"no such job\"}".to_string()),
    }
}

// ===== live watch (chunked SSE) =====

/// `GET /watch/<id>`: stream the job's flight recorder as SSE from a
/// resume point (`Last-Event-ID` header or `?from=N`, default 0),
/// ending after the terminal `job_finished` event. A subscriber that
/// fell behind a shed gap gets an SSE comment and resumes at the
/// oldest held event; a subscriber that hangs up costs itself the
/// stream and the job nothing.
fn handle_watch(mut stream: TcpStream, req: &Request, shared: &Arc<Shared>) {
    let id = match req.path["/watch/".len()..].parse::<u64>() {
        Ok(id) => id,
        Err(_) => {
            let _ = Response::json(400, "{\"error\": \"bad job id\"}".to_string())
                .write_to(&mut stream);
            return;
        }
    };
    let hub = {
        let st = shared.state.lock().unwrap();
        st.jobs.get(&id).map(|job| job.recorder.hub())
    };
    let Some(hub) = hub else {
        let _ = Response::json(404, "{\"error\": \"no such job\"}".to_string())
            .write_to(&mut stream);
        return;
    };
    // Resume point: the standard SSE `Last-Event-ID` header names the
    // last sequence the client *saw*, so streaming resumes after it;
    // `?from=N` names the first sequence wanted (curl convenience).
    let from = match (
        req.header("last-event-id").and_then(|v| v.parse::<u64>().ok()),
        req.param("from").and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(last), _) => last + 1,
        (None, Some(from)) => from,
        (None, None) => 0,
    };
    shared.incr(names::DAEMON_WATCH_SUBSCRIBED);
    if from > 0 {
        shared.incr(names::DAEMON_WATCH_RESUMED);
    }
    shared.subscribers.fetch_add(1, Ordering::SeqCst);
    let outcome = stream_watch(&mut stream, &hub, from, shared);
    shared.subscribers.fetch_sub(1, Ordering::SeqCst);
    if outcome.is_err() {
        shared.incr(names::DAEMON_WATCH_DISCONNECTED);
    }
}

fn stream_watch(
    stream: &mut TcpStream,
    hub: &Arc<EventHub>,
    from: u64,
    shared: &Arc<Shared>,
) -> io::Result<()> {
    watch::write_sse_head(stream)?;
    let mut next = from;
    loop {
        let delivery = hub.wait_since(next, Duration::from_millis(50));
        if let Some(first) = delivery.events.first() {
            if first.seq > next {
                // The journal shed events this subscriber never saw.
                let shed = first.seq - next;
                shared.add(names::DAEMON_WATCH_EVENTS_SHED, shed);
                watch::write_sse_comment(
                    stream,
                    &format!("shed {shed} event(s) before seq {}", first.seq),
                )?;
                next = first.seq;
            }
            for event in &delivery.events {
                watch::write_sse_event(stream, event)?;
                next = event.seq + 1;
            }
            shared.add(
                names::DAEMON_WATCH_EVENTS_STREAMED,
                delivery.events.len() as u64,
            );
        }
        if delivery.closed && next >= delivery.next_seq {
            return watch::finish_sse(stream);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain has finished every job; anything still open here is
            // a watcher of a never-run job. End the stream cleanly.
            return watch::finish_sse(stream);
        }
    }
}

fn handle_result(path: &str, shared: &Arc<Shared>) -> Response {
    let key = &path["/results/".len()..];
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Response::json(400, "{\"error\": \"bad result key\"}".to_string());
    }
    match shared.store.get(key) {
        CacheRead::Hit(bytes) => Response {
            status: 200,
            content_type: "application/json",
            headers: vec![("x-cache", "hit".to_string())],
            body: bytes,
        },
        CacheRead::Miss => {
            Response::json(404, "{\"error\": \"no result under this key\"}".to_string())
        }
        CacheRead::Corrupt(why) => {
            shared.incr(names::DAEMON_CACHE_CORRUPT);
            eprintln!("polite-wifi-d: result {key} failed verification ({why}); dropping entry");
            let _ = std::fs::remove_file(shared.store.entry_path(key));
            Response::json(
                410,
                format!(
                    "{{\"error\": \"entry failed verification: {why}; resubmit to recompute\"}}"
                ),
            )
        }
    }
}

// ===== submission =====

fn handle_submit(req: &Request, shared: &Arc<Shared>) -> Response {
    shared.incr(names::DAEMON_SUBMIT_TOTAL);
    if shared.draining.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
        shared.incr(names::DAEMON_ADMISSION_REJECTED);
        return Response::json(
            503,
            "{\"error\": \"draining; not accepting work\"}".to_string(),
        )
        .with_header("retry-after", "1".to_string());
    }
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return Response::json(400, "{\"error\": \"body is not UTF-8\"}".to_string()),
    };
    let spec = match ScenarioSpec::parse(text) {
        Ok(spec) => spec,
        Err(e) => {
            return Response::json(
                400,
                format!("{{\"error\": \"{}\"}}", crate::jobs::escape(&e)),
            )
        }
    };
    let inject = req
        .param("inject_trial_panic")
        .and_then(|v| v.parse::<usize>().ok());
    let wait = req.param("wait") == Some("1");
    let key = spec.canonical_hash();

    // Injected-chaos jobs are deliberately degraded: never cached,
    // never coalesced with (or onto) a clean run of the same spec.
    if inject.is_none() {
        match shared.store.get(&key) {
            CacheRead::Hit(bytes) => {
                shared.incr(names::DAEMON_CACHE_HIT);
                return if wait {
                    Response {
                        status: 200,
                        content_type: "application/json",
                        headers: vec![("x-cache", "hit".to_string())],
                        body: bytes,
                    }
                } else {
                    Response::json(
                        200,
                        format!("{{\"cached\": true, \"key\": \"{key}\", \"result\": \"/results/{key}\"}}"),
                    )
                };
            }
            CacheRead::Corrupt(why) => {
                shared.incr(names::DAEMON_CACHE_CORRUPT);
                eprintln!(
                    "polite-wifi-d: cache entry {key} failed verification ({why}); recomputing"
                );
            }
            CacheRead::Miss => {
                shared.incr(names::DAEMON_CACHE_MISS);
            }
        }
    }

    let job_id = {
        let mut st = shared.state.lock().unwrap();
        if inject.is_none() {
            if let Some(&existing) = st.inflight.get(&key) {
                shared.incr(names::DAEMON_SUBMIT_COALESCED);
                // The in-flight job's journal notes the duplicate: a
                // watcher sees demand for this result, not just its
                // progress.
                if let Some(job) = st.jobs.get(&existing) {
                    job.recorder
                        .publish(ProgressEvent::new("cache_hit").with_detail("coalesced"));
                }
                drop(st);
                return if wait {
                    wait_and_respond(existing, shared)
                } else {
                    Response::json(
                        202,
                        format!("{{\"job\": {existing}, \"coalesced\": true, \"key\": \"{key}\"}}"),
                    )
                };
            }
        }
        if st.queue.len() >= shared.config.queue_depth {
            drop(st);
            shared.incr(names::DAEMON_ADMISSION_REJECTED);
            return Response::json(
                429,
                "{\"error\": \"queue full; back off and retry\"}".to_string(),
            )
            .with_header("retry-after", "1".to_string());
        }
        let id = st.next_id;
        st.next_id += 1;
        let args = spec.run_args();
        let recorder = Arc::new(ChannelProgress::new(shared.config.journal_capacity));
        recorder.publish(
            ProgressEvent::new("job_accepted")
                .with("job", id)
                .with("trials", args.trials as u64)
                .with("workers", args.workers as u64)
                .with("seed", args.seed),
        );
        st.jobs.insert(
            id,
            Job {
                id,
                key: key.clone(),
                slug: spec.slug.clone(),
                runner: spec.runner.clone(),
                spec_json: spec.to_canonical_json(),
                state: JobState::Queued,
                attempts: 0,
                inject_trial_panic: inject,
                cached: false,
                detail: String::new(),
                submitted_at: Instant::now(),
                started_at: None,
                finished_at: None,
                token: None,
                deadline: None,
                not_before: None,
                trials: args.trials as u64,
                workers: args.workers as u64,
                seed: args.seed,
                recorder,
                last_deadline_event: None,
            },
        );
        st.queue.push_back(id);
        if inject.is_none() {
            st.inflight.insert(key.clone(), id);
        }
        let depth = st.queue.len() as u64;
        drop(st);
        shared.observe(names::DAEMON_QUEUE_DEPTH, depth);
        shared.cv.notify_all();
        id
    };
    if wait {
        wait_and_respond(job_id, shared)
    } else {
        Response::json(
            202,
            format!("{{\"job\": {job_id}, \"state\": \"queued\", \"key\": \"{key}\"}}"),
        )
    }
}

/// Blocks until `id` reaches a terminal state, then renders the result:
/// the envelope bytes on success, the status document on failure.
fn wait_and_respond(id: u64, shared: &Arc<Shared>) -> Response {
    let (state, key, cached, status_json) = {
        let mut st = shared.state.lock().unwrap();
        loop {
            let job = match st.jobs.get(&id) {
                Some(job) => job,
                None => return Response::json(404, "{\"error\": \"job vanished\"}".to_string()),
            };
            if job.state.is_terminal() {
                break (
                    job.state,
                    job.key.clone(),
                    job.cached,
                    job.status_json(Instant::now(), None),
                );
            }
            let (guard, _) = shared
                .cv
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap();
            st = guard;
        }
    };
    match state {
        JobState::Done => {
            let bytes = if cached {
                match shared.store.get(&key) {
                    CacheRead::Hit(bytes) => Some(bytes),
                    _ => None,
                }
            } else {
                None
            };
            let bytes = bytes.or_else(|| read_job_envelope(shared, id));
            match bytes {
                Some(bytes) => Response {
                    status: 200,
                    content_type: "application/json",
                    headers: vec![("x-cache", "miss".to_string())],
                    body: bytes,
                },
                None => Response::json(500, "{\"error\": \"result file missing\"}".to_string()),
            }
        }
        JobState::TimedOut => Response::json(504, status_json),
        _ => Response::json(500, status_json),
    }
}

fn job_dir(shared: &Shared, id: u64) -> PathBuf {
    shared.config.state_dir.join("jobs").join(id.to_string())
}

fn read_job_envelope(shared: &Shared, id: u64) -> Option<Vec<u8>> {
    let slug = {
        let st = shared.state.lock().unwrap();
        st.jobs.get(&id)?.slug.clone()
    };
    std::fs::read(job_dir(shared, id).join(format!("{slug}.json"))).ok()
}

// ===== workers =====

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job_id = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(id) = pop_due(&mut st) {
                    break Some(id);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                // Timed wait: delayed retries become due without any
                // notify, and shutdown must not strand a sleeper.
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(10))
                    .unwrap();
                st = guard;
            }
        };
        match job_id {
            Some(id) => run_one(&shared, id),
            None => return,
        }
    }
}

/// Pops the first queued job whose retry gate (if any) has passed.
fn pop_due(st: &mut State) -> Option<u64> {
    let now = Instant::now();
    let pos = st.queue.iter().position(|id| {
        st.jobs
            .get(id)
            .is_some_and(|j| !j.not_before.is_some_and(|t| t > now))
    })?;
    st.queue.remove(pos)
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panic (non-string payload)".to_string()
    }
}

fn run_one(shared: &Arc<Shared>, id: u64) {
    let token = CancelToken::new();
    let (spec_json, inject, key, slug, attempt, recorder) = {
        let mut st = shared.state.lock().unwrap();
        st.running += 1;
        let job = st.jobs.get_mut(&id).expect("queued job exists");
        job.state = JobState::Running;
        job.attempts += 1;
        job.started_at = Some(Instant::now());
        job.finished_at = None;
        job.not_before = None;
        job.token = Some(token.clone());
        job.deadline = Some(Instant::now() + shared.config.job_timeout);
        (
            job.spec_json.clone(),
            job.inject_trial_panic,
            job.key.clone(),
            job.slug.clone(),
            job.attempts,
            Arc::clone(&job.recorder),
        )
    };
    recorder.publish(ProgressEvent::new("job_started").with("attempt", attempt as u64));

    let dir = job_dir(shared, id);
    let prev_dir = polite_wifi_harness::set_thread_results_dir(Some(dir.clone()));
    let prev_token = cancel::install_token(Some(token.clone()));
    // The flight recorder rides the same thread-local channel as the
    // results dir: `Experiment::start_with` (called by `run_spec` on
    // this thread) picks it up and drives it at trial boundaries.
    let prev_sink =
        set_thread_progress_sink(Some(Arc::clone(&recorder) as Arc<dyn ProgressSink>));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let spec = ScenarioSpec::parse(&spec_json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let mut args = spec.run_args();
        args.quiet = true;
        if inject.is_some() {
            args.inject_trial_panic = inject;
        }
        run_spec(&spec, args)
    }));
    set_thread_progress_sink(prev_sink);
    cancel::install_token(prev_token);
    polite_wifi_harness::set_thread_results_dir(prev_dir);

    enum Verdict {
        Done,
        TimedOut(String),
        Failed(String),
    }
    let verdict = match outcome {
        Ok(Ok(0)) => Verdict::Done,
        Ok(Ok(status)) if token.is_cancelled() => Verdict::TimedOut(format!(
            "job deadline exceeded (run degraded to exit status {status})"
        )),
        Ok(Ok(status)) => Verdict::Failed(format!("exit status {status}")),
        Ok(Err(e)) => Verdict::Failed(format!("io error: {e}")),
        Err(payload) => {
            let detail = panic_detail(payload);
            if cancel::is_cancellation(&detail) {
                Verdict::TimedOut(detail)
            } else {
                Verdict::Failed(format!("panic: {detail}"))
            }
        }
    };

    match verdict {
        Verdict::Done => {
            let mut cached = false;
            if inject.is_none() {
                match std::fs::read(dir.join(format!("{slug}.json"))) {
                    Ok(bytes) => match shared.store.put(&key, &bytes) {
                        Ok(()) => cached = true,
                        Err(e) => eprintln!("polite-wifi-d: cannot cache {key}: {e}"),
                    },
                    Err(e) => eprintln!("polite-wifi-d: job {id} left no envelope: {e}"),
                }
            }
            // Counter before the state transition: a wait=1 responder
            // wakes on the transition and must see consistent metrics.
            shared.incr(names::DAEMON_JOBS_COMPLETED);
            seal_recorder(shared, &recorder, JobState::Done, cached);
            finish(shared, id, JobState::Done, String::new(), cached);
        }
        Verdict::TimedOut(detail) => {
            // No retry: the next attempt would hit the same deadline.
            shared.incr(names::DAEMON_JOBS_TIMED_OUT);
            seal_recorder(shared, &recorder, JobState::TimedOut, false);
            finish(shared, id, JobState::TimedOut, detail, false);
        }
        Verdict::Failed(detail) => {
            if attempt <= shared.config.retry_max {
                let delay_us = shared
                    .config
                    .retry_policy
                    .delay_us(attempt, fnv1a64(key.as_bytes()));
                shared.incr(names::DAEMON_JOBS_RETRIED);
                recorder.publish(
                    ProgressEvent::new("job_retried")
                        .with_detail(&detail)
                        .with("attempt", attempt as u64)
                        .with("delay_us", delay_us),
                );
                requeue(shared, id, detail, Duration::from_micros(delay_us));
            } else {
                shared.incr(names::DAEMON_JOBS_FAILED);
                seal_recorder(shared, &recorder, JobState::Failed, false);
                finish(shared, id, JobState::Failed, detail, false);
            }
        }
    }
}

/// Publishes the terminal `job_finished` event, closes the stream so
/// `/watch` subscribers drain and hang up, and rolls the journal's
/// lifetime tallies into the daemon's metrics scope. Called before the
/// terminal state transition so a `wait=1` responder that wakes on the
/// transition sees consistent metrics.
fn seal_recorder(
    shared: &Arc<Shared>,
    recorder: &Arc<ChannelProgress>,
    state: JobState,
    cached: bool,
) {
    // The terminal detail is the state name; failure specifics already
    // live in the preceding trial_failed / job_retried events and the
    // `/jobs/<id>` status document.
    recorder.publish(
        ProgressEvent::new("job_finished")
            .with_detail(state.name())
            .with("cached", cached as u64)
            .with("trials_done", recorder.trials_done()),
    );
    let hub = recorder.hub();
    hub.close();
    shared.add(names::PROGRESS_EVENTS, hub.published());
    let shed = hub.shed();
    if shed > 0 {
        shared.add(names::PROGRESS_EVENTS_SHED, shed);
    }
}

/// Terminal transition: record the outcome, release the coalescing
/// slot, wake waiters.
fn finish(shared: &Arc<Shared>, id: u64, state: JobState, detail: String, cached: bool) {
    let mut st = shared.state.lock().unwrap();
    st.running -= 1;
    let key = if let Some(job) = st.jobs.get_mut(&id) {
        job.state = state;
        job.detail = detail;
        job.cached = cached;
        job.finished_at = Some(Instant::now());
        job.token = None;
        job.deadline = None;
        Some(job.key.clone())
    } else {
        None
    };
    if let Some(key) = key {
        if st.inflight.get(&key).is_some_and(|&owner| owner == id) {
            st.inflight.remove(&key);
        }
    }
    drop(st);
    shared.cv.notify_all();
}

/// Bounded-retry transition: back to the queue behind a delay gate.
fn requeue(shared: &Arc<Shared>, id: u64, detail: String, delay: Duration) {
    let mut st = shared.state.lock().unwrap();
    st.running -= 1;
    if let Some(job) = st.jobs.get_mut(&id) {
        job.state = JobState::Queued;
        job.detail = format!("retrying after: {detail}");
        job.token = None;
        job.deadline = None;
        job.not_before = Some(Instant::now() + delay);
    }
    st.queue.push_back(id);
    drop(st);
    shared.cv.notify_all();
}

// ===== supervisor =====

/// How often a running job's journal gets a `deadline_remaining`
/// event. Coarser than the 2ms cancellation tick: the tick must catch
/// overruns promptly, but a watcher only needs a countdown heartbeat.
const DEADLINE_EVENT_EVERY: Duration = Duration::from_millis(500);

fn supervisor_loop(shared: Arc<Shared>) {
    let mut last_sample: Option<Instant> = None;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(2));
        let now = Instant::now();
        let mut st = shared.state.lock().unwrap();
        for job in st.jobs.values_mut() {
            if job.state == JobState::Running {
                if let (Some(deadline), Some(token)) = (job.deadline, &job.token) {
                    if now >= deadline && !token.is_cancelled() {
                        token.cancel();
                    }
                    let due = job
                        .last_deadline_event
                        .is_none_or(|t| now.duration_since(t) >= DEADLINE_EVENT_EVERY);
                    if due {
                        job.last_deadline_event = Some(now);
                        job.recorder.publish(
                            ProgressEvent::new("deadline_remaining").with(
                                "remaining_ms",
                                deadline.saturating_duration_since(now).as_millis() as u64,
                            ),
                        );
                    }
                }
            }
        }
        drop(st);
        // Sample the daemon counters into the history ring once per
        // window (wall-clock; this plane never touches envelopes).
        let due = last_sample.is_none_or(|t| now.duration_since(t) >= shared.config.history_window);
        if due {
            last_sample = Some(now);
            let at_ms = shared.uptime_ms();
            let mut obs = shared.obs.lock().unwrap();
            obs.incr(names::DAEMON_HISTORY_SAMPLES);
            shared.history.lock().unwrap().sample(&obs.counters, at_ms);
        }
    }
}
