//! Energy modelling for the battery-drain attack (paper §4.2, Figure 6).
//!
//! The pipeline: the simulator's per-node radio ledger reports how long
//! the victim spent in each state (sleep / idle / RX / TX); a
//! [`PowerProfile`] converts that into milliwatts; a [`Battery`] converts
//! sustained milliwatts into hours of life.
//!
//! The ESP8266 profile is calibrated so that the *simulated* Figure 6
//! reproduces the paper's three anchor points: ~10 mW with no attack,
//! ~230 mW once >10 packets/s keep the radio awake, and ~360 mW at
//! 900 packets/s (35× the baseline).

pub mod battery;
pub mod observe;
pub mod profile;

pub use battery::{Battery, DrainProjection};
pub use profile::{PowerProfile, StateDurations};
