//! Error type for frame parsing and encoding.

use core::fmt;

/// Errors produced while parsing or validating 802.11 frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the fixed header or a mandatory field.
    Truncated {
        /// What was being parsed when the buffer ran out.
        context: &'static str,
        /// Bytes required to continue.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame check sequence did not match the frame contents.
    BadFcs {
        /// FCS carried by the frame.
        expected: u32,
        /// FCS computed over the frame body.
        computed: u32,
    },
    /// A type/subtype combination this codec does not model.
    UnsupportedSubtype {
        /// Raw 2-bit type field.
        ftype: u8,
        /// Raw 4-bit subtype field.
        subtype: u8,
    },
    /// The 802.11 protocol-version bits were not zero.
    BadProtocolVersion(u8),
    /// An information element declared a length that overruns the buffer.
    BadElementLength {
        /// Element id.
        id: u8,
        /// Declared length.
        declared: usize,
        /// Bytes remaining in the body.
        available: usize,
    },
    /// A field held a value outside its legal range.
    InvalidField {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable explanation.
        reason: &'static str,
    },
    /// A textual MAC address failed to parse.
    BadMacAddress,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated {
                context,
                needed,
                available,
            } => write!(
                f,
                "truncated frame while parsing {context}: need {needed} bytes, have {available}"
            ),
            FrameError::BadFcs { expected, computed } => write!(
                f,
                "FCS mismatch: frame carries {expected:#010x}, computed {computed:#010x}"
            ),
            FrameError::UnsupportedSubtype { ftype, subtype } => {
                write!(f, "unsupported frame type {ftype}/subtype {subtype}")
            }
            FrameError::BadProtocolVersion(v) => {
                write!(f, "unsupported 802.11 protocol version {v}")
            }
            FrameError::BadElementLength {
                id,
                declared,
                available,
            } => write!(
                f,
                "information element {id} declares {declared} bytes but only {available} remain"
            ),
            FrameError::InvalidField { field, reason } => {
                write!(f, "invalid {field}: {reason}")
            }
            FrameError::BadMacAddress => write!(f, "malformed MAC address string"),
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = FrameError::Truncated {
            context: "ACK",
            needed: 10,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("ACK"));
        assert!(s.contains("10"));
        assert!(s.contains('3'));
    }

    #[test]
    fn fcs_error_formats_hex() {
        let e = FrameError::BadFcs {
            expected: 0xdeadbeef,
            computed: 0x01020304,
        };
        assert!(e.to_string().contains("0xdeadbeef"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FrameError::BadMacAddress);
    }
}
