//! In-memory captures: what a monitor-mode sniffer accumulates.

use crate::format::{LinkType, PcapWriter};
use polite_wifi_frame::Frame;
use polite_wifi_radiotap::Radiotap;

/// One captured frame with its metadata.
#[derive(Debug, Clone)]
pub struct CapturedFrame {
    /// Capture timestamp in microseconds of simulation time.
    pub ts_us: u64,
    /// Radiotap metadata attached by the capturing radio, if any.
    pub radiotap: Option<Radiotap>,
    /// The decoded frame.
    pub frame: Frame,
}

/// An in-memory capture, in arrival order. This is what the simulator's
/// monitor taps fill and what the figure regenerators print.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    frames: Vec<CapturedFrame>,
}

impl Capture {
    /// An empty capture.
    pub fn new() -> Capture {
        Capture::default()
    }

    /// Records a frame without radio metadata.
    pub fn record_frame(&mut self, ts_us: u64, frame: &Frame) {
        self.frames.push(CapturedFrame {
            ts_us,
            radiotap: None,
            frame: frame.clone(),
        });
    }

    /// Records a frame with its radiotap metadata.
    pub fn record_with_radiotap(&mut self, ts_us: u64, radiotap: Radiotap, frame: &Frame) {
        self.frames.push(CapturedFrame {
            ts_us,
            radiotap: Some(radiotap),
            frame: frame.clone(),
        });
    }

    /// The captured frames in arrival order.
    pub fn frames(&self) -> &[CapturedFrame] {
        &self.frames
    }

    /// Number of captured frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serialises the capture to pcap file bytes.
    ///
    /// With [`LinkType::Ieee80211Radiotap`], frames that carry radiotap
    /// metadata are prefixed with their encoded header; frames without get
    /// a minimal empty radiotap header so the file stays well-formed.
    pub fn to_pcap_bytes(&self, link_type: LinkType) -> Vec<u8> {
        let mut w = PcapWriter::new(link_type);
        for cf in &self.frames {
            let frame_bytes = cf.frame.encode(true);
            match link_type {
                LinkType::Ieee80211Radiotap => {
                    let rt_bytes = cf.radiotap.clone().unwrap_or_default().encode();
                    let mut packet = rt_bytes;
                    packet.extend_from_slice(&frame_bytes);
                    w.write_record(cf.ts_us, &packet);
                }
                _ => w.write_record(cf.ts_us, &frame_bytes),
            }
        }
        w.into_bytes()
    }

    /// Writes the capture to a `.pcap` file on disk.
    pub fn write_pcap_file(
        &self,
        path: impl AsRef<std::path::Path>,
        link_type: LinkType,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.to_pcap_bytes(link_type))
    }

    /// Serialises the capture to pcapng file bytes (same payload layout
    /// per packet as [`Capture::to_pcap_bytes`]).
    pub fn to_pcapng_bytes(&self, link_type: LinkType) -> Vec<u8> {
        let mut w = crate::pcapng::PcapNgWriter::new(
            link_type,
            &crate::pcapng::PcapNgWriterInfo::default(),
        );
        for cf in &self.frames {
            let frame_bytes = cf.frame.encode(true);
            match link_type {
                LinkType::Ieee80211Radiotap => {
                    let mut packet = cf.radiotap.clone().unwrap_or_default().encode();
                    packet.extend_from_slice(&frame_bytes);
                    w.write_record(cf.ts_us, &packet);
                }
                _ => w.write_record(cf.ts_us, &frame_bytes),
            }
        }
        w.into_bytes()
    }

    /// Writes the capture to a `.pcapng` file on disk.
    pub fn write_pcapng_file(
        &self,
        path: impl AsRef<std::path::Path>,
        link_type: LinkType,
    ) -> std::io::Result<()> {
        std::fs::write(path, self.to_pcapng_bytes(link_type))
    }
}

/// Re-decodes a pcap produced by [`Capture::to_pcap_bytes`] back into
/// frames (dropping radiotap metadata), for loop-back tests.
pub fn decode_capture(bytes: &[u8]) -> Result<Vec<(u64, Frame)>, Box<dyn std::error::Error>> {
    let file = crate::format::read_pcap(bytes)?;
    let mut out = Vec::with_capacity(file.records.len());
    for rec in &file.records {
        let frame_bytes: &[u8] = match file.link_type {
            LinkType::Ieee80211Radiotap => {
                let (_, consumed) = Radiotap::parse(&rec.data)?;
                &rec.data[consumed..]
            }
            _ => &rec.data,
        };
        out.push((rec.ts_us, Frame::parse(frame_bytes, true)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_frame::{builder, MacAddr};
    use polite_wifi_radiotap::ChannelInfo;

    fn victim() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn bare_80211_pcap_round_trips() {
        let mut cap = Capture::new();
        let fake = builder::fake_null_frame(victim(), MacAddr::FAKE);
        let ack = builder::ack(MacAddr::FAKE);
        cap.record_frame(100, &fake);
        cap.record_frame(144, &ack);

        let decoded = decode_capture(&cap.to_pcap_bytes(LinkType::Ieee80211)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].0, 100);
        assert_eq!(decoded[0].1, fake);
        assert_eq!(decoded[1].1, ack);
    }

    #[test]
    fn radiotap_pcap_round_trips() {
        let mut cap = Capture::new();
        let ack = builder::ack(MacAddr::FAKE);
        cap.record_with_radiotap(
            44,
            Radiotap::capture(44, 2, ChannelInfo::ghz2(6), -48, -91),
            &ack,
        );
        let bytes = cap.to_pcap_bytes(LinkType::Ieee80211Radiotap);
        let decoded = decode_capture(&bytes).unwrap();
        assert_eq!(decoded[0].1, ack);
    }

    #[test]
    fn frames_without_radiotap_get_empty_header_in_radiotap_files() {
        let mut cap = Capture::new();
        cap.record_frame(0, &builder::ack(MacAddr::FAKE));
        let decoded = decode_capture(&cap.to_pcap_bytes(LinkType::Ieee80211Radiotap)).unwrap();
        assert_eq!(decoded.len(), 1);
    }

    #[test]
    fn pcapng_capture_round_trips() {
        let mut cap = Capture::new();
        let fake = builder::fake_null_frame(victim(), MacAddr::FAKE);
        cap.record_frame(42, &fake);
        cap.record_with_radiotap(
            100,
            Radiotap::capture(100, 2, ChannelInfo::ghz2(6), -50, -92),
            &builder::ack(MacAddr::FAKE),
        );
        for link in [LinkType::Ieee80211, LinkType::Ieee80211Radiotap] {
            let bytes = cap.to_pcapng_bytes(link);
            let file = crate::pcapng::read_pcapng(&bytes).unwrap();
            assert_eq!(file.link_type, link);
            assert_eq!(file.records.len(), 2);
            assert_eq!(file.records[0].ts_us, 42);
            // Frames decode back out of the records.
            let frame_bytes: &[u8] = match link {
                LinkType::Ieee80211Radiotap => {
                    let (_, consumed) = Radiotap::parse(&file.records[0].data).unwrap();
                    &file.records[0].data[consumed..]
                }
                _ => &file.records[0].data,
            };
            assert_eq!(Frame::parse(frame_bytes, true).unwrap(), fake);
        }
    }

    #[test]
    fn capture_accessors() {
        let mut cap = Capture::new();
        assert!(cap.is_empty());
        cap.record_frame(5, &builder::ack(victim()));
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.frames()[0].ts_us, 5);
    }
}
