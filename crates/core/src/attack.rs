//! The common attack / probe / assertion trait layer.
//!
//! Every experiment used to wire its attacker, its measurements and its
//! pass/fail checks straight into its `main` — the deauth, NAV-DoS,
//! ranging, keystroke and wardrive structs each talked to the harness
//! ad hoc. This module gives the three roles names so a declarative
//! scenario (see `polite-wifi-scenario`) can compose them from data:
//!
//! * an [`Attack`] schedules forged traffic into a prepared
//!   [`Simulator`] and reports how many frames it committed to the air;
//! * a [`Probe`] reads measurements out of a *finished* simulation into
//!   the experiment's [`MetricsLedger`];
//! * an [`Assertion`] checks recorded metrics against a pass/fail
//!   predicate, aggregating every violation into one error message
//!   (the same contract as the harness flag parser).
//!
//! The paper's own fake-frame stream ([`InjectionPlan`]) implements
//! [`Attack`] directly, and the temporal ACK pairer ([`AckVerifier`])
//! implements [`Probe`]; the related-work attacks (deauth floods per
//! arXiv 2602.23513, NAV reservations, Bl0ck's forged BlockAckReq per
//! arXiv 2302.05899) live here as small standalone structs.

use crate::injector::{FakeFrameInjector, InjectionPlan};
use crate::verifier::AckVerifier;
use polite_wifi_frame::{builder, ControlFrame, Frame, MacAddr};
use polite_wifi_harness::MetricsLedger;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::{NodeId, Simulator};

/// Launch-time context: which node transmits the forged frames.
#[derive(Debug, Clone, Copy)]
pub struct AttackCtx {
    /// The attacking node (usually a monitor-mode dongle).
    pub attacker: NodeId,
    /// The trial's derived seed, for attacks that need randomness.
    pub seed: u64,
}

/// Something that schedules forged traffic into a prepared simulator.
pub trait Attack: Send + Sync {
    /// Stable kebab-case name (used in scenario files and logs).
    fn name(&self) -> &'static str;
    /// Schedule every frame of the attack. Returns frames committed.
    fn launch(&self, sim: &mut Simulator, ctx: &AttackCtx) -> u64;
}

/// Something that reads measurements out of a finished simulation.
pub trait Probe: Send + Sync {
    /// Stable kebab-case name.
    fn name(&self) -> &'static str;
    /// Record this probe's measurements into the ledger.
    fn observe(&self, sim: &Simulator, ledger: &mut MetricsLedger);
}

/// A pass/fail predicate over recorded metrics.
pub trait Assertion {
    /// Human-readable form, e.g. `throughput_fraction <= 0.2`.
    fn describe(&self) -> String;
    /// Check the predicate; `lookup` resolves a metric name to its mean.
    fn check(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Result<(), String>;
}

/// Evaluates every assertion and aggregates all violations into one
/// error, mirroring the harness flag parser's one-aggregated-error
/// style.
pub fn check_all(
    assertions: &[Box<dyn Assertion>],
    lookup: &dyn Fn(&str) -> Option<f64>,
) -> Result<(), String> {
    let problems: Vec<String> = assertions
        .iter()
        .filter_map(|a| a.check(lookup).err())
        .collect();
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// The paper's fake-frame stream is the canonical attack.
impl Attack for InjectionPlan {
    fn name(&self) -> &'static str {
        match self.kind {
            crate::injector::InjectionKind::NullData => "null-flood",
            crate::injector::InjectionKind::Rts => "rts-flood",
        }
    }

    fn launch(&self, sim: &mut Simulator, ctx: &AttackCtx) -> u64 {
        FakeFrameInjector::new(ctx.attacker).execute(sim, self)
    }
}

/// A classic deauthentication flood: forged unprotected deauth frames
/// claiming the AP's address, aimed at a client (arXiv 2602.23513's
/// resilience-matrix attacker). PMF-enabled victims discard them — after
/// ACKing — and stay associated; everyone else is kicked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeauthFlood {
    /// The client being kicked.
    pub victim: MacAddr,
    /// The AP address the attacker forges as transmitter/BSSID.
    pub forged_ap: MacAddr,
    /// Frames per second.
    pub rate_pps: u32,
    /// First injection time.
    pub start_us: u64,
    /// Stream duration.
    pub duration_us: u64,
    /// Transmit bit rate.
    pub bitrate: BitRate,
}

impl Attack for DeauthFlood {
    fn name(&self) -> &'static str {
        "deauth-flood"
    }

    fn launch(&self, sim: &mut Simulator, ctx: &AttackCtx) -> u64 {
        if self.rate_pps == 0 {
            return 0;
        }
        let gap = 1_000_000 / self.rate_pps as u64;
        let n = self.duration_us * self.rate_pps as u64 / 1_000_000;
        for i in 0..n {
            let frame = builder::deauth(
                self.victim,
                self.forged_ap,
                self.forged_ap,
                (i & 0x0fff) as u16,
                polite_wifi_frame::ReasonCode::PrevAuthNotValid,
            );
            sim.inject(self.start_us + i * gap, ctx.attacker, frame, self.bitrate);
        }
        n
    }
}

/// A NAV-stuffing RTS flood: oversized `duration_us` reservations that
/// freeze every honest contender (the exp_ext_nav_dos attacker as a
/// reusable struct).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NavRtsFlood {
    /// The station whose CTS the attacker elicits.
    pub target: MacAddr,
    /// Forged transmitter address.
    pub forged_ta: MacAddr,
    /// The NAV reservation each RTS claims, in microseconds.
    pub nav_us: u16,
    /// Frames per second.
    pub rate_pps: u32,
    /// First injection time.
    pub start_us: u64,
    /// Stream duration.
    pub duration_us: u64,
    /// Transmit bit rate.
    pub bitrate: BitRate,
}

impl Attack for NavRtsFlood {
    fn name(&self) -> &'static str {
        "nav-rts-flood"
    }

    fn launch(&self, sim: &mut Simulator, ctx: &AttackCtx) -> u64 {
        if self.rate_pps == 0 {
            return 0;
        }
        let gap = 1_000_000 / self.rate_pps as u64;
        let n = self.duration_us * self.rate_pps as u64 / 1_000_000;
        for i in 0..n {
            let frame = builder::fake_rts(self.target, self.forged_ta, self.nav_us);
            sim.inject(self.start_us + i * gap, ctx.attacker, frame, self.bitrate);
        }
        n
    }
}

/// Bl0ck-style Block-Ack paralysis (arXiv 2302.05899): a forged
/// BlockAckReq claiming an associated peer's address slides the victim's
/// reordering-window floor to `jump_to_seq`, and the peer's legitimate
/// traffic below the floor is dropped as stale from then on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockAckParalysis {
    /// The receiver whose window is being jumped.
    pub victim: MacAddr,
    /// The associated peer the attacker impersonates.
    pub spoofed_peer: MacAddr,
    /// The sequence number the window floor jumps to.
    pub jump_to_seq: u16,
    /// Injection time.
    pub at_us: u64,
    /// Transmit bit rate.
    pub bitrate: BitRate,
}

impl Attack for BlockAckParalysis {
    fn name(&self) -> &'static str {
        "blockack-paralysis"
    }

    fn launch(&self, sim: &mut Simulator, ctx: &AttackCtx) -> u64 {
        let bar = Frame::Ctrl(ControlFrame::BlockAckReq {
            duration_us: 0,
            ra: self.victim,
            ta: self.spoofed_peer,
            control: 0x0004,
            start_seq: self.jump_to_seq << 4,
        });
        sim.inject(self.at_us, ctx.attacker, bar, self.bitrate);
        1
    }
}

/// The temporal ACK pairer doubles as a probe: it records how many of
/// the attacker's injections were verifiably acknowledged.
impl Probe for AckVerifier {
    fn name(&self) -> &'static str {
        "ack-verifier"
    }

    fn observe(&self, sim: &Simulator, ledger: &mut MetricsLedger) {
        let verified = self.verify(sim.global_capture());
        ledger.record("acks_elicited", verified.len() as f64);
    }
}

/// Which [`StationStats`](polite_wifi_mac::station::StationStats) counter a
/// [`StationStatProbe`] reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatKind {
    /// ACKs transmitted.
    AcksSent,
    /// CTS responses transmitted.
    CtsSent,
    /// Frames delivered to the higher layer.
    Delivered,
    /// Frames discarded after the ACK already left.
    DiscardedAfterAck,
    /// Duplicates suppressed.
    Duplicates,
    /// Deauthentication frames queued.
    DeauthsSent,
    /// Data frames dropped below the Block-Ack window floor.
    BaStaleDropped,
}

impl StatKind {
    /// Stable snake_case name used in scenario files.
    pub fn label(&self) -> &'static str {
        match self {
            StatKind::AcksSent => "acks_sent",
            StatKind::CtsSent => "cts_sent",
            StatKind::Delivered => "delivered",
            StatKind::DiscardedAfterAck => "discarded_after_ack",
            StatKind::Duplicates => "duplicates",
            StatKind::DeauthsSent => "deauths_sent",
            StatKind::BaStaleDropped => "ba_stale_dropped",
        }
    }

    /// Parses the snake_case name back.
    pub fn from_label(label: &str) -> Option<StatKind> {
        Some(match label {
            "acks_sent" => StatKind::AcksSent,
            "cts_sent" => StatKind::CtsSent,
            "delivered" => StatKind::Delivered,
            "discarded_after_ack" => StatKind::DiscardedAfterAck,
            "duplicates" => StatKind::Duplicates,
            "deauths_sent" => StatKind::DeauthsSent,
            "ba_stale_dropped" => StatKind::BaStaleDropped,
            _ => return None,
        })
    }
}

/// Records one station counter under a metric name of the scenario's
/// choosing.
#[derive(Debug, Clone, PartialEq)]
pub struct StationStatProbe {
    /// The station to read.
    pub node: NodeId,
    /// Which counter.
    pub stat: StatKind,
    /// The ledger metric name to record under.
    pub metric: String,
}

impl Probe for StationStatProbe {
    fn name(&self) -> &'static str {
        "station-stat"
    }

    fn observe(&self, sim: &Simulator, ledger: &mut MetricsLedger) {
        let stats = &sim.station(self.node).stats;
        let value = match self.stat {
            StatKind::AcksSent => stats.acks_sent,
            StatKind::CtsSent => stats.cts_sent,
            StatKind::Delivered => stats.delivered,
            StatKind::DiscardedAfterAck => stats.discarded_after_ack,
            StatKind::Duplicates => stats.duplicates,
            StatKind::DeauthsSent => stats.deauths_sent,
            StatKind::BaStaleDropped => stats.ba_stale_dropped,
        };
        ledger.record(&self.metric, value as f64);
    }
}

/// Records whether a station is still associated with `peer` (1 or 0) —
/// the deauth-resilience verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationProbe {
    /// The station to inspect.
    pub node: NodeId,
    /// The peer whose association is checked.
    pub peer: MacAddr,
    /// The ledger metric name to record under.
    pub metric: String,
}

impl Probe for AssociationProbe {
    fn name(&self) -> &'static str {
        "association"
    }

    fn observe(&self, sim: &Simulator, ledger: &mut MetricsLedger) {
        let associated = sim.station(self.node).is_associated_with(self.peer);
        ledger.record(&self.metric, if associated { 1.0 } else { 0.0 });
    }
}

/// The comparison operator of a [`MetricAssertion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The operator's scenario-file spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Parses the scenario-file spelling.
    pub fn from_symbol(sym: &str) -> Option<CmpOp> {
        Some(match sym {
            ">=" => CmpOp::Ge,
            ">" => CmpOp::Gt,
            "<=" => CmpOp::Le,
            "<" => CmpOp::Lt,
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            _ => return None,
        })
    }

    /// Applies the comparison.
    pub fn holds(&self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

/// `metric <op> value` over a recorded metric's mean.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAssertion {
    /// The ledger metric to check.
    pub metric: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub value: f64,
}

impl Assertion for MetricAssertion {
    fn describe(&self) -> String {
        format!("{} {} {}", self.metric, self.op.symbol(), self.value)
    }

    fn check(&self, lookup: &dyn Fn(&str) -> Option<f64>) -> Result<(), String> {
        match lookup(&self.metric) {
            None => Err(format!(
                "assertion `{}` references unrecorded metric `{}`",
                self.describe(),
                self.metric
            )),
            Some(actual) if !self.op.holds(actual, self.value) => Err(format!(
                "assertion `{}` failed: measured {actual}",
                self.describe()
            )),
            Some(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polite_wifi_mac::StationConfig;
    use polite_wifi_sim::SimConfig;

    fn victim_mac() -> MacAddr {
        "f2:6e:0b:11:22:33".parse().unwrap()
    }

    #[test]
    fn injection_plan_is_an_attack() {
        let mut sim = Simulator::new(SimConfig::default(), 5);
        let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        let plan = InjectionPlan {
            victim: victim_mac(),
            forged_ta: MacAddr::FAKE,
            kind: crate::injector::InjectionKind::NullData,
            rate_pps: 50,
            start_us: 0,
            duration_us: 1_000_000,
            bitrate: BitRate::Mbps1,
        };
        let attack: &dyn Attack = &plan;
        let n = attack.launch(&mut sim, &AttackCtx { attacker, seed: 7 });
        assert_eq!(n, 50);
        sim.run_until(2_000_000);
        assert_eq!(sim.station(victim).stats.acks_sent, 50);

        let mut ledger = MetricsLedger::new();
        StationStatProbe {
            node: victim,
            stat: StatKind::AcksSent,
            metric: "acks".into(),
        }
        .observe(&sim, &mut ledger);
        assert_eq!(ledger.mean("acks"), Some(50.0));
    }

    #[test]
    fn deauth_flood_kicks_unprotected_client_only() {
        for (pmf, expect_associated) in [(false, false), (true, true)] {
            let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();
            let mut sim = Simulator::new(SimConfig::default(), 7);
            let mut cfg = StationConfig::client(victim_mac());
            if pmf {
                cfg.behavior = polite_wifi_mac::Behavior::pmf_client();
            }
            let victim = sim.add_node(cfg, (0.0, 0.0));
            sim.station_mut(victim).associate(ap_mac);
            let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
            let flood = DeauthFlood {
                victim: victim_mac(),
                forged_ap: ap_mac,
                rate_pps: 10,
                start_us: 0,
                duration_us: 500_000,
                bitrate: BitRate::Mbps1,
            };
            assert_eq!(flood.launch(&mut sim, &AttackCtx { attacker, seed: 1 }), 5);
            sim.run_until(1_000_000);
            let mut ledger = MetricsLedger::new();
            AssociationProbe {
                node: victim,
                peer: ap_mac,
                metric: "still_associated".into(),
            }
            .observe(&sim, &mut ledger);
            let expected = if expect_associated { 1.0 } else { 0.0 };
            assert_eq!(ledger.mean("still_associated"), Some(expected), "pmf={pmf}");
        }
    }

    #[test]
    fn metric_assertions_aggregate_failures() {
        let assertions: Vec<Box<dyn Assertion>> = vec![
            Box::new(MetricAssertion {
                metric: "a".into(),
                op: CmpOp::Ge,
                value: 1.0,
            }),
            Box::new(MetricAssertion {
                metric: "b".into(),
                op: CmpOp::Lt,
                value: 0.5,
            }),
            Box::new(MetricAssertion {
                metric: "missing".into(),
                op: CmpOp::Eq,
                value: 0.0,
            }),
        ];
        let lookup = |name: &str| match name {
            "a" => Some(2.0),
            "b" => Some(0.9),
            _ => None,
        };
        let err = check_all(&assertions, &lookup).unwrap_err();
        assert!(err.contains("assertion `b < 0.5` failed: measured 0.9"));
        assert!(err.contains("unrecorded metric `missing`"));
        assert!(!err.contains("`a >= 1`"));
        assert_eq!(err.matches("; ").count(), 1);
    }

    #[test]
    fn cmp_op_symbols_round_trip() {
        for op in [
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(CmpOp::from_symbol(op.symbol()), Some(op));
        }
        assert_eq!(CmpOp::from_symbol("=>"), None);
    }

    #[test]
    fn stat_kind_labels_round_trip() {
        for stat in [
            StatKind::AcksSent,
            StatKind::CtsSent,
            StatKind::Delivered,
            StatKind::DiscardedAfterAck,
            StatKind::Duplicates,
            StatKind::DeauthsSent,
            StatKind::BaStaleDropped,
        ] {
            assert_eq!(StatKind::from_label(stat.label()), Some(stat));
        }
        assert_eq!(StatKind::from_label("nope"), None);
    }
}
