//! Battery life under attack — the §4.2 projections.

use serde::{Deserialize, Serialize};

/// A battery-operated WiFi product.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    /// Product name.
    pub name: String,
    /// Battery capacity in milliwatt-hours.
    pub capacity_mwh: f64,
    /// The vendor's advertised battery life in hours (for contrast).
    pub advertised_life_hours: f64,
}

impl Battery {
    /// Logitech Circle 2 wireless security camera: 2400 mWh, advertised
    /// "up to 3 months".
    pub fn logitech_circle2() -> Battery {
        Battery {
            name: "Logitech Circle 2".into(),
            capacity_mwh: 2400.0,
            advertised_life_hours: 3.0 * 30.0 * 24.0,
        }
    }

    /// Amazon Blink XT2 security camera: 6000 mWh, advertised "up to
    /// 2 years".
    pub fn blink_xt2() -> Battery {
        Battery {
            name: "Amazon Blink XT2".into(),
            capacity_mwh: 6000.0,
            advertised_life_hours: 2.0 * 365.0 * 24.0,
        }
    }

    /// Hours until empty at a sustained average power draw.
    pub fn life_hours(&self, average_power_mw: f64) -> f64 {
        if average_power_mw <= 0.0 {
            return f64::INFINITY;
        }
        self.capacity_mwh / average_power_mw
    }

    /// Projects the impact of an attack drawing `attacked_mw` on this
    /// battery.
    pub fn project(&self, attacked_mw: f64) -> DrainProjection {
        let attacked_life_hours = self.life_hours(attacked_mw);
        DrainProjection {
            battery: self.clone(),
            attacked_mw,
            attacked_life_hours,
            speedup: self.advertised_life_hours / attacked_life_hours,
        }
    }
}

/// The outcome of a battery-drain projection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainProjection {
    /// The product attacked.
    pub battery: Battery,
    /// Sustained power under attack, mW.
    pub attacked_mw: f64,
    /// Hours until the battery is empty under attack.
    pub attacked_life_hours: f64,
    /// How many times faster the battery drains than advertised.
    pub speedup: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle2_drains_in_about_6_7_hours_at_360mw() {
        // The paper's §4.2 numbers: 2400 mWh / 360 mW ≈ 6.7 h.
        let life = Battery::logitech_circle2().life_hours(360.0);
        assert!((6.6..6.8).contains(&life), "life {life} h");
    }

    #[test]
    fn blink_xt2_drains_in_about_16_7_hours_at_360mw() {
        // 6000 mWh / 360 mW ≈ 16.7 h.
        let life = Battery::blink_xt2().life_hours(360.0);
        assert!((16.6..16.8).contains(&life), "life {life} h");
    }

    #[test]
    fn projection_speedup_is_dramatic() {
        let p = Battery::blink_xt2().project(360.0);
        // Advertised 2 years vs ~17 hours: three orders of magnitude.
        assert!(p.speedup > 1000.0, "speedup {}", p.speedup);
        assert_eq!(p.battery.name, "Amazon Blink XT2");
    }

    #[test]
    fn zero_power_is_infinite_life() {
        assert!(Battery::logitech_circle2().life_hours(0.0).is_infinite());
    }

    #[test]
    fn life_scales_inversely_with_power() {
        let b = Battery::logitech_circle2();
        assert!((b.life_hours(100.0) / b.life_hours(200.0) - 2.0).abs() < 1e-9);
    }
}
