//! Criterion benchmarks for the sensing pipeline, including the raw-vs-
//! conditioned ablation DESIGN.md §5 calls out.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use polite_wifi_phy::csi::CsiChannel;
use polite_wifi_sensing::features::{extract, sliding_features};
use polite_wifi_sensing::filter;
use polite_wifi_sensing::keystroke::{detect_keystrokes, KeystrokeDetectorConfig};
use polite_wifi_sensing::segment::{segment, SegmenterConfig};

fn series(n: usize) -> Vec<f64> {
    let mut ch = CsiChannel::new(1);
    (0..n)
        .map(|i| {
            ch.sample(if i % 100 < 30 { 0.6 } else { 0.0 })
                .amplitude(17)
        })
        .collect()
}

fn bench_csi_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("csi_generation");
    g.throughput(Throughput::Elements(1));
    let mut ch = CsiChannel::new(2);
    g.bench_function("sample_56_subcarriers", |b| b.iter(|| ch.sample(0.3)));
    g.finish();
}

fn bench_conditioning(c: &mut Criterion) {
    let s = series(6750); // 45 s at 150 Hz — the Figure 5 workload
    let mut g = c.benchmark_group("conditioning");
    g.throughput(Throughput::Elements(s.len() as u64));
    g.bench_function("hampel_plus_ma_45s", |b| {
        b.iter(|| filter::condition(black_box(&s)))
    });
    g.bench_function("hampel_only_45s", |b| {
        b.iter(|| filter::hampel(black_box(&s), 5, 3.0))
    });
    g.bench_function("moving_average_only_45s", |b| {
        b.iter(|| filter::moving_average(black_box(&s), 2))
    });
    g.finish();
}

fn bench_features_and_detection(c: &mut Criterion) {
    let s = series(6750);
    let conditioned = filter::condition(&s);
    let mut g = c.benchmark_group("inference");
    g.bench_function("window_features_60", |b| {
        b.iter(|| extract(black_box(&conditioned[..60])))
    });
    g.bench_function("sliding_features_45s", |b| {
        b.iter(|| sliding_features(black_box(&conditioned), 30, 10))
    });
    g.bench_function("segmentation_45s", |b| {
        b.iter(|| segment(black_box(&conditioned), &SegmenterConfig::default()))
    });
    // Ablation: keystroke detection on raw vs conditioned input.
    let cfg = KeystrokeDetectorConfig::default();
    g.bench_function("keystroke_detect_conditioned", |b| {
        b.iter(|| detect_keystrokes(black_box(&conditioned), &cfg))
    });
    g.bench_function("keystroke_detect_raw", |b| {
        b.iter(|| detect_keystrokes(black_box(&s), &cfg))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_csi_generation,
    bench_conditioning,
    bench_features_and_detection
);
criterion_main!(benches);
