//! Per-node radio-state accounting, consumed by the energy model.

use polite_wifi_mac::RadioState;

/// Accumulated time in each radio state. The battery-drain experiment
/// (Figure 6) integrates these against the device's power profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateTotals {
    /// Microseconds spent asleep.
    pub sleep_us: u64,
    /// Microseconds awake but idle (listening).
    pub idle_us: u64,
    /// Microseconds actively receiving.
    pub rx_us: u64,
    /// Microseconds actively transmitting.
    pub tx_us: u64,
}

impl StateTotals {
    /// Total accounted time.
    pub fn total_us(&self) -> u64 {
        self.sleep_us + self.idle_us + self.rx_us + self.tx_us
    }
}

/// Tracks a radio's state transitions over time.
///
/// TX/RX are "nested" over the awake/asleep base state: `begin_busy`
/// switches to TX or RX and `end_busy` falls back to the base state.
#[derive(Debug, Clone)]
pub struct ActivityLedger {
    totals: StateTotals,
    current: RadioState,
    /// Base state to return to after TX/RX (Idle or Sleep).
    base: RadioState,
    since_us: u64,
}

impl ActivityLedger {
    /// Starts the ledger at `t0_us` in the given base state.
    pub fn new(t0_us: u64, awake: bool) -> ActivityLedger {
        let base = if awake {
            RadioState::Idle
        } else {
            RadioState::Sleep
        };
        ActivityLedger {
            totals: StateTotals::default(),
            current: base,
            base,
            since_us: t0_us,
        }
    }

    fn credit(&mut self, until_us: u64) {
        let dt = until_us.saturating_sub(self.since_us);
        match self.current {
            RadioState::Sleep => self.totals.sleep_us += dt,
            RadioState::Idle => self.totals.idle_us += dt,
            RadioState::Rx => self.totals.rx_us += dt,
            RadioState::Tx => self.totals.tx_us += dt,
        }
        // Never move backwards: a retroactive transition (e.g. an RX
        // burst whose start predates an interval we already credited)
        // must not double-count the overlap.
        self.since_us = self.since_us.max(until_us);
    }

    /// Records a base-state change (doze or wake) at `now_us`.
    pub fn set_base(&mut self, now_us: u64, state: RadioState) {
        debug_assert!(matches!(state, RadioState::Sleep | RadioState::Idle));
        self.credit(now_us);
        self.base = state;
        // Only drop to the new base if not mid-TX/RX.
        if matches!(self.current, RadioState::Sleep | RadioState::Idle) {
            self.current = state;
        }
    }

    /// Records the start of a TX or RX burst at `now_us`.
    pub fn begin_busy(&mut self, now_us: u64, state: RadioState) {
        debug_assert!(matches!(state, RadioState::Tx | RadioState::Rx));
        self.credit(now_us);
        self.current = state;
    }

    /// Records the end of a TX/RX burst at `now_us`, returning to base.
    pub fn end_busy(&mut self, now_us: u64) {
        self.credit(now_us);
        self.current = self.base;
    }

    /// Closes the books at `now_us` and returns the totals.
    pub fn snapshot(&self, now_us: u64) -> StateTotals {
        let mut copy = self.clone();
        copy.credit(now_us);
        copy.totals
    }

    /// The state the radio is in right now.
    pub fn current_state(&self) -> RadioState {
        self.current
    }

    /// The base state (Idle or Sleep) the radio returns to after TX/RX.
    pub fn base_state(&self) -> RadioState {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_time_accumulates() {
        let ledger = ActivityLedger::new(0, true);
        let t = ledger.snapshot(1_000_000);
        assert_eq!(t.idle_us, 1_000_000);
        assert_eq!(t.total_us(), 1_000_000);
    }

    #[test]
    fn tx_burst_accounted() {
        let mut ledger = ActivityLedger::new(0, true);
        ledger.begin_busy(100, RadioState::Tx);
        ledger.end_busy(400);
        let t = ledger.snapshot(1_000);
        assert_eq!(t.tx_us, 300);
        assert_eq!(t.idle_us, 700);
    }

    #[test]
    fn doze_and_wake() {
        let mut ledger = ActivityLedger::new(0, true);
        ledger.set_base(500, RadioState::Sleep);
        ledger.set_base(800, RadioState::Idle);
        let t = ledger.snapshot(1_000);
        assert_eq!(t.idle_us, 500 + 200);
        assert_eq!(t.sleep_us, 300);
    }

    #[test]
    fn doze_during_rx_takes_effect_after() {
        let mut ledger = ActivityLedger::new(0, true);
        ledger.begin_busy(100, RadioState::Rx);
        ledger.set_base(200, RadioState::Sleep); // doze decision mid-RX
        ledger.end_busy(300);
        let t = ledger.snapshot(1_000);
        assert_eq!(t.rx_us, 200);
        assert_eq!(t.sleep_us, 700);
        assert_eq!(t.idle_us, 100);
    }

    #[test]
    fn starts_asleep_when_configured() {
        let ledger = ActivityLedger::new(0, false);
        let t = ledger.snapshot(100);
        assert_eq!(t.sleep_us, 100);
    }

    #[test]
    fn retroactive_begin_does_not_double_count() {
        // Two overlapping RX bursts, reported at their end times (the
        // simulator's arrival pattern): [100, 516] then [300, 716].
        let mut ledger = ActivityLedger::new(0, true);
        ledger.begin_busy(100, RadioState::Rx);
        ledger.end_busy(516);
        ledger.begin_busy(300, RadioState::Rx); // starts in the past
        ledger.end_busy(716);
        let t = ledger.snapshot(1_000);
        assert_eq!(t.rx_us, 616, "overlap must be counted once");
        assert_eq!(t.total_us(), 1_000);
    }

    #[test]
    fn snapshot_does_not_mutate() {
        let mut ledger = ActivityLedger::new(0, true);
        ledger.begin_busy(10, RadioState::Tx);
        let a = ledger.snapshot(100);
        let b = ledger.snapshot(100);
        assert_eq!(a, b);
        assert_eq!(ledger.current_state(), RadioState::Tx);
    }
}
