//! E1 — Figure 2: the frames exchanged between attacker and victim.
//!
//! One fake null-function frame from `aa:bb:bb:bb:bb:bb` to the victim;
//! the victim answers with an ACK addressed back to the forged MAC.
//! Prints the Wireshark-style rows and writes the pcap.
//!
//! Fully spec-driven: topology (AP + victim + monitor, linked) and the
//! null-flood parameters come from `scenarios/fig2_trace.json`, not
//! code — the template for writing your own scenario (README has the
//! walkthrough).

use crate::spec::{bitrate_from_label, AttackSpec, ScenarioSpec};
use crate::support::{compare, ensure_results_dir};
use polite_wifi_core::{AckVerifier, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_harness::{Experiment, RunArgs};
use polite_wifi_pcap::{trace, LinkType};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Result {
    fakes_sent: u64,
    acks_elicited: usize,
    ack_latency_us: Vec<u64>,
    trace_rows: Vec<[String; 4]>,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let topo = spec
        .topology
        .as_ref()
        .expect("fig2_trace spec has a topology");
    let (sb, ids) = topo.builder(exp.args().faults);
    let (victim, attacker) = (ids["victim"], ids["attacker"]);
    let attacker_mac = topo.mac_of("attacker");
    let mut scenario = sb.build_with_seed(exp.seed());

    let Some(AttackSpec::NullFlood {
        victim: flood_victim,
        rate_pps,
        start_us,
        duration_us,
        bitrate,
        ..
    }) = spec.attacks.first()
    else {
        panic!("fig2_trace spec declares a null-flood attack");
    };
    let plan = InjectionPlan {
        victim: topo.mac_of(flood_victim),
        forged_ta: attacker_mac,
        kind: InjectionKind::NullData,
        rate_pps: *rate_pps,
        start_us: *start_us,
        duration_us: *duration_us,
        bitrate: bitrate_from_label(bitrate).expect("validated at parse time"),
    };
    let fakes = FakeFrameInjector::new(attacker).execute(&mut scenario.sim, &plan);
    let sim = scenario.run();

    // Print the attack exchange only (beacons elided, like the figure).
    let rows: Vec<_> = trace::rows(&sim.node(attacker).capture)
        .into_iter()
        .filter(|r| !r.info.starts_with("Beacon"))
        .collect();
    println!("\nSource             Destination        Info");
    for r in &rows {
        println!("{:<18} {:<18} {}", r.source, r.destination, r.info);
    }

    let exchanges = AckVerifier::new(attacker_mac).verify(&sim.node(attacker).capture);
    let latencies: Vec<u64> = exchanges
        .iter()
        .map(|e| e.ack_ts_us - e.fake_ts_us)
        .collect();
    exp.metrics.record("fakes_sent", fakes as f64);
    exp.metrics.record("acks_elicited", exchanges.len() as f64);
    for l in &latencies {
        exp.metrics.record("ack_latency_us", *l as f64);
    }

    println!();
    compare(
        "victim ACKs every fake frame",
        "yes",
        if exchanges.len() as u64 == fakes {
            "yes"
        } else {
            "NO"
        },
    );
    compare(
        "ACK destination is the forged MAC",
        "aa:bb:bb:bb:bb:bb",
        &rows
            .iter()
            .find(|r| r.info.starts_with("Acknowledgement"))
            .map(|r| r.destination.clone())
            .unwrap_or_default(),
    );
    compare(
        "ACK latency after frame end (SIFS + ACK airtime)",
        "10 µs SIFS",
        &format!("{} µs total", latencies.first().copied().unwrap_or(0)),
    );

    let path = ensure_results_dir()?.join(format!("{}.pcap", spec.slug));
    sim.node(attacker)
        .capture
        .write_pcap_file(&path, LinkType::Ieee80211Radiotap)?;
    println!("\npcap written to {}", path.display());

    scenario.observe_activity(victim, "power.victim");
    let snapshot = scenario.sim.take_obs();
    exp.absorb_obs(snapshot);

    if exp.args().faults.is_clean() {
        assert_eq!(exchanges.len() as u64, fakes, "every fake must be ACKed");
    }
    exp.finish_with_status(
        &spec.slug,
        &Fig2Result {
            fakes_sent: fakes,
            acks_elicited: exchanges.len(),
            ack_latency_us: latencies,
            trace_rows: rows
                .iter()
                .map(|r| {
                    [
                        r.time.clone(),
                        r.source.clone(),
                        r.destination.clone(),
                        r.info.clone(),
                    ]
                })
                .collect(),
        },
    )
}
