//! Vendored, API-compatible subset of `crossbeam`.
//!
//! The build environment has no registry access, so this crate adapts
//! the standard library to the two crossbeam APIs the workspace uses:
//!
//! * [`channel`] — `unbounded()` MPSC channels with `Sender` / `Receiver`
//!   handles (backed by `std::sync::mpsc`; the workspace only ever uses
//!   single-consumer patterns, so the MPMC generality of real crossbeam
//!   channels is not needed);
//! * [`thread`] — `scope()` for borrowing worker threads (backed by
//!   `std::thread::scope`, which has provided structured spawning in the
//!   standard library since Rust 1.63).

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

/// MPSC channels with the crossbeam calling conventions.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half. Clonable, like crossbeam's.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Drains every message currently in the channel without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }

        /// Blocking iterator until all senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads with the crossbeam calling conventions.
pub mod thread {
    /// A scope handle: spawn threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (the
        /// crossbeam convention, enabling nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            ScopedJoinHandle(inner.spawn(move || f(&Scope(inner))))
        }
    }

    /// Creates a scope for spawning borrowing threads. All spawned
    /// threads are joined when the scope ends; a panicking child
    /// surfaces as `Err`, like crossbeam's.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates child panics by panicking on
        // exit; catch to preserve crossbeam's Result-based API.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope(s)))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip_and_try_iter() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn scope_borrows_and_joins() {
        let data = vec![1u64, 2, 3, 4];
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_propagates_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
