//! Reproducibility: every experiment is a pure function of its seed.
//!
//! This is a substrate-level guarantee the whole evaluation rests on —
//! EXPERIMENTS.md quotes numbers that must regenerate bit-for-bit.

use polite_wifi::core::{
    BatchSensingHub, BatteryDrainAttack, CityWardrive, KeystrokeAttack, SensingHub, WardriveScanner,
};
use polite_wifi::devices::{CityPopulation, DeviceSpec};
use polite_wifi::harness::{Experiment, RunArgs, Runner};
use polite_wifi::obs::{Obs, ObsConfig};
use polite_wifi::sensing::MotionScript;
use polite_wifi::sim::FaultProfile;

#[test]
fn drain_attack_is_deterministic() {
    let run = || {
        BatteryDrainAttack {
            rate_pps: 150,
            warmup_us: 1_000_000,
            measure_us: 3_000_000,
            seed: 11,
            ..BatteryDrainAttack::default()
        }
        .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn keystroke_attack_is_deterministic() {
    let a = KeystrokeAttack::figure5(13).run();
    let b = KeystrokeAttack::figure5(13).run();
    assert_eq!(a.amplitudes, b.amplitudes);
    assert_eq!(a.keystroke_score, b.keystroke_score);
    // ...and a different seed gives a different channel realisation.
    let c = KeystrokeAttack::figure5(14).run();
    assert_ne!(a.amplitudes, c.amplitudes);
}

#[test]
fn survey_is_deterministic() {
    let full = CityPopulation::table2(3);
    let devices: Vec<DeviceSpec> = full.devices.iter().step_by(200).cloned().collect();
    let slice = CityPopulation {
        devices,
        registry: full.registry.clone(),
    };
    let scanner = WardriveScanner {
        segment_size: 14,
        dwell_us: 1_500_000,
        ..WardriveScanner::default()
    };
    let a = scanner.run(&slice);
    let b = scanner.run(&slice);
    assert_eq!(a, b);
}

#[test]
fn sensing_hub_is_deterministic() {
    let scripts = vec![MotionScript::walk_by(10_000_000, 4_000_000, 6_000_000)];
    let hub = SensingHub {
        rate_pps_per_target: 150,
        subcarrier: 17,
        seed: 21,
        ..SensingHub::default()
    };
    assert_eq!(hub.run(&scripts), hub.run(&scripts));
}

/// The fault layer must not cost determinism: a degraded run under
/// `--faults urban-drive` — retries, fault counters, an injected trial
/// panic and all — writes a byte-identical envelope at every worker
/// count, `TrialFailure` list included.
#[test]
fn faulty_degraded_envelope_is_worker_invariant() {
    let dir = std::env::temp_dir().join("polite-wifi-determinism-faults");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("POLITE_WIFI_RESULTS", &dir);

    let run = |workers: usize| {
        let args = RunArgs {
            trials: 4,
            workers,
            seed: 2026,
            faults: FaultProfile::UrbanDrive,
            inject_trial_panic: Some(1),
            allow_partial: true,
            ..RunArgs::default()
        };
        let mut exp = Experiment::start_with("determinism: faulty envelope", "none", args);
        let reports: Vec<_> = exp
            .run_trials(|t| {
                BatteryDrainAttack {
                    rate_pps: 120,
                    warmup_us: 500_000,
                    measure_us: 1_500_000,
                    seed: t.seed,
                    faults: FaultProfile::UrbanDrive,
                    ..BatteryDrainAttack::default()
                }
                .run()
            })
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(reports.len(), 3, "exactly the injected trial degrades");
        for m in &reports {
            exp.metrics.record("acks_sent", m.acks_sent as f64);
        }
        let status = exp
            .finish_with_status("faulty_envelope", &reports)
            .expect("envelope written");
        assert_eq!(status, 0, "--allow-partial accepts the injected failure");
        let raw = std::fs::read_to_string(dir.join("faulty_envelope.json")).unwrap();
        // The envelope self-describes its run config, so the recorded
        // worker count (and nothing else) legitimately differs.
        assert!(raw.contains(&format!("\"workers\": {workers}")));
        raw.replace(
            &format!("\"workers\": {workers}"),
            "\"workers\": <normalised>",
        )
    };

    let w1 = run(1);
    let w4 = run(4);
    let w8 = run(8);
    assert!(w1.contains("\"trial_failures\""));
    assert!(w1.contains("injected trial panic (--inject-trial-panic 1)"));
    assert!(w1.contains("\"faults\": \"urban-drive\""));
    assert_eq!(w1, w4, "1-worker and 4-worker envelopes differ");
    assert_eq!(w1, w8, "1-worker and 8-worker envelopes differ");
    let _ = std::fs::remove_dir_all(&dir);
}

/// One trial of the traced urban-drive scenario: a victim, a retrying
/// attacker, the urban-drive fault plan, and a per-trial tracing scope
/// (installed directly on the simulator, independent of the process-wide
/// obs config other tests in this binary may have installed first).
fn traced_urban_trial(seed: u64) -> Obs {
    use polite_wifi::frame::{builder, MacAddr};
    use polite_wifi::mac::StationConfig;
    use polite_wifi::phy::rate::BitRate;
    use polite_wifi::sim::{SimConfig, Simulator};

    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), seed);
    *sim.obs_mut() = Obs::with_config(ObsConfig::tracing());
    let _victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_monitor(attacker, true);
    // Retries stay enabled: a burst-loss drop must grow a causal chain
    // (fault-drop → retry → delivered), not end the exchange.
    sim.install_faults(&FaultProfile::UrbanDrive.plan());
    for i in 0..150u64 {
        sim.inject(
            1_000 + i * 6_000,
            attacker,
            builder::fake_null_frame(victim_mac, MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim.run_until(1_200_000);
    sim.take_obs()
}

/// Runs the traced scenario at a worker count and merges the per-trial
/// scopes in trial order into one tracing root.
fn traced_urban_run(workers: usize) -> Obs {
    let snapshots = Runner::new(workers).run_trials(4242, 6, |t| traced_urban_trial(t.seed));
    let mut root = Obs::with_config(ObsConfig::tracing());
    for (i, snap) in snapshots.iter().enumerate() {
        root.absorb(snap, i as u64);
    }
    root
}

/// True when some sampled frame timeline shows the full causal chain of
/// a fault-dropped-then-retried exchange: inject → tx → burst-loss drop
/// (`fate.fer_dropped` arg 1 marks the injected fault) → retry → tx →
/// delivered → ACK scheduled exactly at SIFS → response tx → verify.
fn has_fault_retry_chain(obs: &Obs, sifs_us: u64) -> bool {
    let want: &[(&str, Option<u64>)] = &[
        ("inject", None),
        ("tx", None),
        ("fate.fer_dropped", Some(1)),
        ("retry", None),
        ("tx", None),
        ("fate.delivered", None),
        ("sifs_ack", Some(sifs_us)),
        ("response_tx", None),
        ("ack_rx", None),
    ];
    obs.traces.traces().iter().any(|t| {
        let mut hops = t.hops.iter();
        want.iter().all(|(kind, arg)| {
            hops.by_ref()
                .any(|h| h.kind == *kind && arg.map_or(true, |a| h.arg == a))
        })
    })
}

/// Observability v2's pinned contract: causal frame tracing and the
/// scheduler self-profiler cost nothing in determinism. The merged
/// canonical exports — counters, histograms, the profiler's
/// count/virtual-time attribution, and every sampled frame timeline —
/// are byte-identical at 1, 4 and 8 workers, and at least one timeline
/// shows the full fault-drop → retry → delivered → SIFS-ACK causal
/// chain the tracing layer exists to explain.
#[test]
fn traced_urban_drive_run_is_worker_invariant_with_causal_chains() {
    let w1 = traced_urban_run(1);
    let (metrics1, traces1) = (w1.metrics_json(), w1.frame_traces_json());
    for workers in [4, 8] {
        let w = traced_urban_run(workers);
        assert_eq!(
            metrics1,
            w.metrics_json(),
            "metrics drift at {workers} workers"
        );
        assert_eq!(
            traces1,
            w.frame_traces_json(),
            "frame timelines drift at {workers} workers"
        );
    }

    // The exports actually carry the new subsystems (not vacuously
    // identical): profiler attribution and sampled timelines.
    assert!(metrics1.contains("\"profiler\":{"), "{metrics1}");
    assert!(metrics1.contains("\"arrival\""), "{metrics1}");
    assert!(metrics1.contains("\"frame.fate.delivered\""), "{metrics1}");
    assert!(!w1.traces.traces().is_empty());

    // The paper's SIFS constant, straight from the band tables.
    let sifs_us = polite_wifi::phy::band::Band::Ghz2.sifs_us() as u64;
    assert_eq!(sifs_us, 10);
    assert!(
        has_fault_retry_chain(&w1, sifs_us),
        "no trace shows inject → tx → fault-drop → retry → delivered → \
         SIFS ACK → verify; fates seen: {}",
        w1.frame_traces_json()
    );
}

/// A city drive small enough for a tier-1 test but wide enough to fill
/// many interference cells and both scheduler backends' overflow paths.
fn mini_city() -> CityWardrive {
    CityWardrive {
        seed: 7,
        devices: 1_500,
        segment_size: 256,
        dwell_us: 400_000,
        area_m: 600.0,
        ..CityWardrive::default()
    }
}

/// The city-scale core's determinism contract (DESIGN.md §11): the
/// 100k-device path — cell grid, calendar queue, SoA arena, per-segment
/// seeds — produces a byte-identical merged envelope at 1, 4 and 8
/// workers. Pinned here on a scaled-down city so tier-1 stays fast; the
/// full-size run is `exp_city_wardrive` (CI's city-smoke job).
#[test]
fn city_wardrive_envelope_is_worker_invariant() {
    let run = |workers: usize| {
        let mut obs = Obs::new();
        let report = mini_city().run_observed(workers, &mut obs);
        (report, obs.metrics_json())
    };
    let (report1, metrics1) = run(1);
    assert!(report1.discovered > 0, "silent mini city: {report1:?}");
    assert!(report1.verified > 0, "{report1:?}");
    for workers in [4, 8] {
        let (report, metrics) = run(workers);
        assert_eq!(report1, report, "city report drifts at {workers} workers");
        assert_eq!(metrics1, metrics, "city metrics drift at {workers} workers");
    }
}

/// The calendar queue is a drop-in for the legacy binary heap: same
/// (time, seq) total order, so byte-identical results — on the new city
/// path and on the pre-refactor seed scenario (legacy all-pairs
/// propagation, sequential draws) alike.
#[test]
fn calendar_queue_matches_legacy_heap() {
    use polite_wifi::frame::{builder, MacAddr};
    use polite_wifi::mac::StationConfig;
    use polite_wifi::phy::rate::BitRate;
    use polite_wifi::sim::{SchedulerKind, SimConfig, Simulator};

    // City path: calendar (the default) vs heap, everything else equal.
    let city = |scheduler: SchedulerKind| {
        let mut obs = Obs::new();
        let drive = CityWardrive {
            scheduler,
            ..mini_city()
        };
        (drive.run_observed(2, &mut obs), obs.metrics_json())
    };
    assert_eq!(
        city(SchedulerKind::Calendar),
        city(SchedulerKind::Heap),
        "calendar and heap city drives diverge"
    );

    // Pre-refactor seed scenario: a close-range fake-null exchange on
    // the legacy all-pairs medium. The heap run reproduces exactly what
    // the pinned results were generated with, so equality here pins the
    // calendar queue to the pre-refactor event order.
    let exchange = |scheduler: SchedulerKind| {
        let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
        let cfg = SimConfig {
            scheduler,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(cfg, 2020);
        let victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
        sim.set_monitor(attacker, true);
        for i in 0..200u64 {
            sim.inject(
                1_000 + i * 4_000,
                attacker,
                builder::fake_null_frame(victim_mac, MacAddr::FAKE),
                BitRate::Mbps1,
            );
        }
        sim.run_until(2_000_000);
        (
            sim.station(victim).stats,
            sim.node(attacker).acks_received,
            sim.events_dispatched(),
            sim.take_obs().metrics_json(),
        )
    };
    assert_eq!(
        exchange(SchedulerKind::Calendar),
        exchange(SchedulerKind::Heap),
        "calendar and heap diverge on the legacy exchange scenario"
    );
}

/// The batched sensing pipeline's determinism contract: a 1k-link hub
/// run over the batched kernels — per-link `sample_batch` rendering,
/// `SeriesBatch` conditioning/segmentation, `hub.*` counters — produces
/// a byte-identical envelope at 1, 4 and 8 workers. A lean CSI channel
/// keeps the debug-mode run fast; the full-width channel is the
/// `time.macro.sensing_hub_1k` bench.
#[test]
fn batch_sensing_hub_1k_envelope_is_worker_invariant() {
    let hub = BatchSensingHub {
        links: 1000,
        samples_per_link: 240,
        links_per_batch: 64,
        csi: polite_wifi::phy::csi::CsiConfig {
            subcarriers: 4,
            taps: 3,
            ..Default::default()
        },
        subcarrier: 1,
        ..BatchSensingHub::default()
    };
    let run = |workers: usize| {
        let mut obs = Obs::new();
        let report = hub.run_observed(workers, &mut obs);
        (serde_json::to_string(&report).unwrap(), obs.metrics_json())
    };
    let (report1, metrics1) = run(1);
    assert!(report1.contains("\"links\":1000"), "{report1}");
    assert!(metrics1.contains("\"hub.links\":1000"), "{metrics1}");
    assert!(metrics1.contains("\"hub.batches\":16"), "{metrics1}");
    for workers in [4, 8] {
        let (report, metrics) = run(workers);
        assert_eq!(report1, report, "hub report drifts at {workers} workers");
        assert_eq!(metrics1, metrics, "hub metrics drift at {workers} workers");
    }
}

#[test]
fn population_is_deterministic_but_seed_sensitive() {
    let a = CityPopulation::table2(1);
    let b = CityPopulation::table2(1);
    let c = CityPopulation::table2(2);
    assert_eq!(a.devices, b.devices);
    // Same marginals, different sampled details.
    assert_eq!(a.devices.len(), c.devices.len());
    assert_ne!(
        a.devices.iter().map(|d| d.channel).collect::<Vec<_>>(),
        c.devices.iter().map(|d| d.channel).collect::<Vec<_>>()
    );
}
