//! Bounded span recording.
//!
//! A span is a named interval of **virtual** simulation time on a track
//! (usually a node id) within a group (usually a trial index). Spans are
//! only recorded when the installed [`ObsConfig`](crate::ObsConfig)
//! enables them — the `--trace-out` flag does that — so steady-state
//! runs pay a single branch per would-be span.
//!
//! The log is bounded: past `max_spans` entries new spans are counted in
//! `dropped` instead of stored, keeping memory finite on city-scale
//! wardrive runs.

/// One completed span on the virtual-time axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What happened (e.g. `frame.exchange`, `trial`).
    pub name: String,
    /// Track within the group — in simulator spans this is the node id.
    pub track: u64,
    /// Group — in harness runs this is the trial index; exported as the
    /// Chrome-trace `pid` so each trial gets its own lane.
    pub group: u64,
    /// Start of the interval in virtual microseconds.
    pub start_us: u64,
    /// Interval length in virtual microseconds.
    pub dur_us: u64,
}

/// A bounded, append-only span log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    spans: Vec<SpanRecord>,
    max_spans: usize,
    /// Spans discarded because the log was full.
    pub dropped: u64,
}

impl SpanLog {
    /// A log that stores at most `max_spans` spans.
    pub fn new(max_spans: usize) -> SpanLog {
        SpanLog {
            spans: Vec::new(),
            max_spans,
            dropped: 0,
        }
    }

    /// Appends a span, or bumps `dropped` when the log is full.
    pub fn push(&mut self, span: SpanRecord) {
        if self.spans.len() < self.max_spans {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Recorded spans in append order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of stored spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends another log's spans, retagging each with `group` (the
    /// absorbing side assigns trial indices). Respects this log's bound.
    pub fn absorb(&mut self, other: &SpanLog, group: u64) {
        self.dropped += other.dropped;
        for span in &other.spans {
            self.push(SpanRecord {
                group,
                ..span.clone()
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            track: 1,
            group: 0,
            start_us,
            dur_us: 5,
        }
    }

    #[test]
    fn push_respects_bound() {
        let mut log = SpanLog::new(2);
        log.push(span("a", 0));
        log.push(span("b", 1));
        log.push(span("c", 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped, 1);
        assert_eq!(log.spans()[1].name, "b");
    }

    #[test]
    fn absorb_retags_group() {
        let mut trial = SpanLog::new(10);
        trial.push(span("exchange", 100));
        let mut merged = SpanLog::new(10);
        merged.absorb(&trial, 7);
        assert_eq!(merged.spans()[0].group, 7);
        assert_eq!(merged.spans()[0].start_us, 100);
    }
}
