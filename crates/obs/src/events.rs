//! The live telemetry plane: typed progress events, a bounded per-job
//! event journal, a subscriber hub and a counter time-series ring.
//!
//! Everything in this module is **operational** telemetry — it exists so
//! an operator (or `trace_query --follow`) can watch a long run while it
//! happens. Nothing here ever reaches a canonical result envelope:
//! wall-clock timestamps are supplied by the caller (the daemon stamps
//! its own uptime), and the event stream is an observation channel, not
//! a result channel, so the byte-identical-across-workers contract on
//! envelopes is untouched (same split as the PR 5 profiler's wall half).
//!
//! Three layers:
//!
//! * [`ProgressEvent`] — one typed event (`job_accepted`,
//!   `trial_finished`, `sample`, `deadline_remaining`, …) with a
//!   journal-assigned, strictly-increasing sequence number, a free-text
//!   detail and an ordered numeric field list;
//! * [`EventJournal`] — a fixed-capacity ring of events (the per-job
//!   *flight recorder*): pushes assign `seq`, overflow sheds the oldest
//!   events but keeps counting them, and [`since`](EventJournal::since)
//!   answers resume-from-N queries;
//! * [`EventHub`] — an [`EventJournal`] behind a mutex + condvar with a
//!   terminal `close()`, so subscribers can block on
//!   [`wait_since`](EventHub::wait_since) while producers never block on
//!   subscribers (a slow or vanished subscriber costs shed events, never
//!   job progress);
//! * [`TimeSeries`] — a fixed-capacity ring of per-window counter
//!   deltas, sampled from a [`Counters`] scope, for `/metrics/history`.

use crate::json::JsonWriter;
use crate::metrics::Counters;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// One progress event. `seq` is assigned by the journal the event is
/// pushed into and is strictly increasing per journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Journal-assigned sequence number (0-based, strictly increasing).
    pub seq: u64,
    /// Event kind: `job_accepted`, `job_started`, `trial_started`,
    /// `trial_finished`, `trial_failed`, `job_retried`, `sample`,
    /// `cache_hit`, `deadline_remaining`, `job_finished`, …
    pub kind: String,
    /// Free-text detail (panic message, terminal state); `""` when none.
    pub detail: String,
    /// Ordered numeric payload, e.g. `[("done", 3), ("total", 8)]`.
    pub fields: Vec<(String, u64)>,
}

impl ProgressEvent {
    /// An event of `kind` with no detail or fields yet.
    pub fn new(kind: &str) -> ProgressEvent {
        ProgressEvent {
            seq: 0,
            kind: kind.to_string(),
            detail: String::new(),
            fields: Vec::new(),
        }
    }

    /// Adds a numeric field (builder style, order preserved).
    pub fn with(mut self, name: &str, value: u64) -> ProgressEvent {
        self.fields.push((name.to_string(), value));
        self
    }

    /// Sets the free-text detail (builder style).
    pub fn with_detail(mut self, detail: &str) -> ProgressEvent {
        self.detail = detail.to_string();
        self
    }

    /// The value of a named field, if present.
    pub fn field(&self, name: &str) -> Option<u64> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Canonical JSON: `seq`, `kind`, `detail` (only when non-empty),
    /// then the fields in recorded order.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object().key("seq").u64(self.seq).key("kind");
        w.string(&self.kind);
        if !self.detail.is_empty() {
            w.key("detail").string(&self.detail);
        }
        for (name, value) in &self.fields {
            w.key(name).u64(*value);
        }
        w.end_object();
        w.finish()
    }
}

/// A fixed-capacity event journal — the per-job flight recorder.
///
/// Pushes assign strictly-increasing sequence numbers. When the ring is
/// full the oldest event is shed (and counted in
/// [`shed`](EventJournal::shed)); the journal never blocks and never
/// grows past its capacity, so a runaway job cannot exhaust memory and
/// a slow reader cannot stall a writer.
#[derive(Debug)]
pub struct EventJournal {
    events: VecDeque<ProgressEvent>,
    capacity: usize,
    next_seq: u64,
    /// Events shed from the head of the ring by overflow.
    pub shed: u64,
}

impl EventJournal {
    /// An empty journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventJournal {
        EventJournal {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            shed: 0,
        }
    }

    /// Appends an event, assigning and returning its sequence number.
    pub fn push(&mut self, mut event: ProgressEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        event.seq = seq;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.shed += 1;
        }
        self.events.push_back(event);
        seq
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no event is held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The sequence number the next push will get (also the total number
    /// of events ever pushed).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The oldest sequence number still held (== `next_seq` when empty).
    pub fn first_seq(&self) -> u64 {
        self.events.front().map_or(self.next_seq, |e| e.seq)
    }

    /// All held events with `seq >= from`, in sequence order. A `from`
    /// older than [`first_seq`](Self::first_seq) silently starts at the
    /// oldest held event — the caller can detect the gap by comparing.
    pub fn since(&self, from: u64) -> Vec<ProgressEvent> {
        self.events
            .iter()
            .filter(|e| e.seq >= from)
            .cloned()
            .collect()
    }

    /// The whole journal as a canonical JSON array.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push(']');
        out
    }
}

/// What one [`EventHub::wait_since`] / [`EventHub::snapshot_since`]
/// delivered.
#[derive(Debug)]
pub struct Delivery {
    /// Events with `seq >= from`, in sequence order (possibly empty).
    pub events: Vec<ProgressEvent>,
    /// Whether the hub has been closed (no further events will arrive).
    pub closed: bool,
    /// Oldest sequence still held when the snapshot was taken; if it is
    /// greater than the requested `from`, the difference was shed before
    /// this subscriber caught up.
    pub first_seq: u64,
    /// The sequence number the next event will get.
    pub next_seq: u64,
}

struct HubInner {
    journal: EventJournal,
    closed: bool,
}

/// A shared, subscribable [`EventJournal`]: producers
/// [`publish`](EventHub::publish) without ever blocking, subscribers
/// block on [`wait_since`](EventHub::wait_since), and
/// [`close`](EventHub::close) marks the stream terminal so subscribers
/// drain and hang up.
pub struct EventHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

impl std::fmt::Debug for EventHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("EventHub")
            .field("len", &inner.journal.len())
            .field("next_seq", &inner.journal.next_seq())
            .field("closed", &inner.closed)
            .finish()
    }
}

impl EventHub {
    /// A hub whose journal holds at most `capacity` events.
    pub fn new(capacity: usize) -> EventHub {
        EventHub {
            inner: Mutex::new(HubInner {
                journal: EventJournal::new(capacity),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Publishes an event and wakes subscribers. Returns the assigned
    /// sequence number. Never blocks on subscribers: a full journal
    /// sheds its oldest event instead.
    pub fn publish(&self, event: ProgressEvent) -> u64 {
        let seq = self.inner.lock().unwrap().journal.push(event);
        self.cv.notify_all();
        seq
    }

    /// Marks the stream terminal and wakes subscribers so they can
    /// drain and hang up. Idempotent.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Total events ever published.
    pub fn published(&self) -> u64 {
        self.inner.lock().unwrap().journal.next_seq()
    }

    /// Events shed by journal overflow so far.
    pub fn shed(&self) -> u64 {
        self.inner.lock().unwrap().journal.shed
    }

    /// Non-blocking snapshot of everything at or past `from`.
    pub fn snapshot_since(&self, from: u64) -> Delivery {
        let inner = self.inner.lock().unwrap();
        Delivery {
            events: inner.journal.since(from),
            closed: inner.closed,
            first_seq: inner.journal.first_seq(),
            next_seq: inner.journal.next_seq(),
        }
    }

    /// Blocks until an event at or past `from` exists, the hub closes,
    /// or `timeout` elapses — whichever comes first — then returns the
    /// snapshot. A timeout simply yields an empty delivery; callers loop.
    pub fn wait_since(&self, from: u64, timeout: Duration) -> Delivery {
        let mut inner = self.inner.lock().unwrap();
        if inner.journal.next_seq() <= from && !inner.closed {
            let (guard, _) = self.cv.wait_timeout(inner, timeout).unwrap();
            inner = guard;
        }
        Delivery {
            events: inner.journal.since(from),
            closed: inner.closed,
            first_seq: inner.journal.first_seq(),
            next_seq: inner.journal.next_seq(),
        }
    }

    /// The whole journal as a canonical JSON array (the
    /// `/jobs/<id>/events` document).
    pub fn to_json(&self) -> String {
        self.inner.lock().unwrap().journal.to_json()
    }
}

/// One sampled window of a [`TimeSeries`]: the per-counter deltas that
/// accumulated since the previous window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Monotone window index (0-based; survives ring eviction).
    pub index: u64,
    /// Caller-supplied timestamp (the daemon stamps uptime ms). Kept
    /// opaque here so this module stays wall-clock-free.
    pub at_ms: u64,
    /// `(counter name, delta)` pairs, sorted by name, zero deltas
    /// omitted.
    pub deltas: Vec<(String, u64)>,
}

/// A fixed-capacity ring of per-window counter deltas.
///
/// [`sample`](TimeSeries::sample) diffs a [`Counters`] scope against the
/// previous sample and records the deltas as one window; old windows are
/// evicted (and counted) when the ring is full. This is the history the
/// daemon serves on `/metrics/history`: cheap, bounded, and precise
/// enough to plot rates without an external scrape loop.
#[derive(Debug)]
pub struct TimeSeries {
    windows: VecDeque<Window>,
    capacity: usize,
    last: BTreeMap<String, u64>,
    next_index: u64,
    /// Windows evicted from the ring by overflow.
    pub evicted: u64,
}

impl TimeSeries {
    /// An empty ring holding at most `capacity` windows (min 1).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            windows: VecDeque::new(),
            capacity: capacity.max(1),
            last: BTreeMap::new(),
            next_index: 0,
            evicted: 0,
        }
    }

    /// Samples `counters` at caller-time `at_ms`: records one window of
    /// per-counter deltas versus the previous sample and returns its
    /// index. Counters are monotone, so deltas are exact saturating
    /// differences; unchanged counters are omitted from the window.
    pub fn sample(&mut self, counters: &Counters, at_ms: u64) -> u64 {
        let mut deltas = Vec::new();
        for (name, value) in counters.sorted() {
            let prev = self.last.get(name).copied().unwrap_or(0);
            let delta = value.saturating_sub(prev);
            if delta > 0 {
                deltas.push((name.to_string(), delta));
            }
            self.last.insert(name.to_string(), value);
        }
        let index = self.next_index;
        self.next_index += 1;
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.evicted += 1;
        }
        self.windows.push_back(Window {
            index,
            at_ms,
            deltas,
        });
        index
    }

    /// The held windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Number of windows currently held.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing has been sampled yet (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The `/metrics/history` document: ring metadata plus every held
    /// window with its sorted non-zero deltas.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("capacity")
            .u64(self.capacity as u64)
            .key("evicted")
            .u64(self.evicted)
            .key("windows")
            .begin_array();
        for window in &self.windows {
            w.begin_object()
                .key("index")
                .u64(window.index)
                .key("at_ms")
                .u64(window.at_ms)
                .key("deltas")
                .begin_object();
            for (name, delta) in &window.deltas {
                w.key(name).u64(*delta);
            }
            w.end_object().end_object();
        }
        w.end_array().end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_assigns_strictly_increasing_seqs_and_sheds_oldest() {
        let mut j = EventJournal::new(3);
        for i in 0..5u64 {
            let seq = j.push(ProgressEvent::new("tick").with("i", i));
            assert_eq!(seq, i);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.shed, 2);
        assert_eq!(j.first_seq(), 2);
        assert_eq!(j.next_seq(), 5);
        let seqs: Vec<u64> = j.since(0).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let seqs: Vec<u64> = j.since(4).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4]);
        assert!(j.since(5).is_empty());
    }

    #[test]
    fn event_json_is_canonical_and_skips_empty_detail() {
        let mut j = EventJournal::new(8);
        j.push(
            ProgressEvent::new("trial_finished")
                .with("done", 2)
                .with("total", 8),
        );
        j.push(ProgressEvent::new("job_finished").with_detail("done").with("cached", 1));
        let json = j.to_json();
        assert_eq!(
            json,
            "[{\"seq\":0,\"kind\":\"trial_finished\",\"done\":2,\"total\":8},\
             {\"seq\":1,\"kind\":\"job_finished\",\"detail\":\"done\",\"cached\":1}]"
        );
        // Round-trips through the vendored parser.
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(doc.as_array().unwrap().len(), 2);
    }

    #[test]
    fn hub_wait_since_sees_published_events_and_close() {
        let hub = std::sync::Arc::new(EventHub::new(16));
        let seq = hub.publish(ProgressEvent::new("a"));
        assert_eq!(seq, 0);
        let d = hub.wait_since(0, Duration::from_millis(1));
        assert_eq!(d.events.len(), 1);
        assert!(!d.closed);

        // A waiter blocked past the journal end is woken by a publish
        // from another thread.
        let waiter = {
            let hub = std::sync::Arc::clone(&hub);
            std::thread::spawn(move || hub.wait_since(1, Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        hub.publish(ProgressEvent::new("b"));
        let d = waiter.join().unwrap();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].kind, "b");

        hub.close();
        let d = hub.wait_since(2, Duration::from_secs(30));
        assert!(d.events.is_empty());
        assert!(d.closed, "close must release waiters immediately");
    }

    #[test]
    fn hub_publishing_never_blocks_without_subscribers() {
        // The "disconnected subscriber" contract at the hub level: far
        // more events than capacity, nobody reading — every publish
        // returns, overflow is counted, the newest events survive.
        let hub = EventHub::new(4);
        for i in 0..100u64 {
            hub.publish(ProgressEvent::new("tick").with("i", i));
        }
        assert_eq!(hub.published(), 100);
        assert_eq!(hub.shed(), 96);
        let d = hub.snapshot_since(0);
        assert_eq!(d.first_seq, 96);
        let seqs: Vec<u64> = d.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![96, 97, 98, 99]);
    }

    #[test]
    fn time_series_records_per_window_deltas() {
        let mut ts = TimeSeries::new(4);
        let mut c = Counters::new();
        c.add("a", 3);
        assert_eq!(ts.sample(&c, 10), 0);
        c.add("a", 2);
        c.add("b", 7);
        assert_eq!(ts.sample(&c, 20), 1);
        // No change → a window with no deltas (still proves liveness).
        assert_eq!(ts.sample(&c, 30), 2);

        let windows: Vec<&Window> = ts.windows().collect();
        assert_eq!(windows[0].deltas, vec![("a".to_string(), 3)]);
        assert_eq!(
            windows[1].deltas,
            vec![("a".to_string(), 2), ("b".to_string(), 7)]
        );
        assert!(windows[2].deltas.is_empty());

        let json = ts.to_json();
        let doc = crate::json::parse(&json).unwrap();
        assert_eq!(
            doc.get("windows").unwrap().as_array().unwrap().len(),
            3
        );
        assert!(json.contains("\"at_ms\":20"));
    }

    #[test]
    fn time_series_ring_evicts_but_keeps_monotone_indices() {
        let mut ts = TimeSeries::new(2);
        let mut c = Counters::new();
        for i in 0..5u64 {
            c.add("n", 1);
            assert_eq!(ts.sample(&c, i), i);
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.evicted, 3);
        let indices: Vec<u64> = ts.windows().map(|w| w.index).collect();
        assert_eq!(indices, vec![3, 4]);
    }
}
