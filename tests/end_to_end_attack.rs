//! Cross-crate integration: the full attack loop from frame bytes to
//! pcap and back.
//!
//! frame codec → simulator → MAC state machines → capture → pcap file →
//! reparse → verification. If any layer disagrees about the byte format
//! or the timing, this test catches it.

use polite_wifi::core::{AckVerifier, FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi::frame::{builder, ControlFrame, Frame, MacAddr};
use polite_wifi::mac::{Behavior, StationConfig};
use polite_wifi::pcap::capture::decode_capture;
use polite_wifi::pcap::LinkType;
use polite_wifi::phy::rate::BitRate;
use polite_wifi::sim::{SimConfig, Simulator};

fn victim_mac() -> MacAddr {
    "f2:6e:0b:11:22:33".parse().unwrap()
}

/// The complete Figure 2 loop, ending in a byte-identical pcap round trip.
#[test]
fn inject_ack_capture_pcap_reparse() {
    let mut sim = Simulator::new(SimConfig::default(), 1);
    let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_monitor(attacker, true);

    let plan = InjectionPlan {
        victim: victim_mac(),
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::NullData,
        rate_pps: 10,
        start_us: 0,
        duration_us: 1_000_000,
        bitrate: BitRate::Mbps1,
    };
    FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
    sim.run_until(2_000_000);

    assert_eq!(sim.station(victim).stats.acks_sent, 10);

    // Capture → pcap bytes → decode: frames survive both link types.
    for link in [LinkType::Ieee80211, LinkType::Ieee80211Radiotap] {
        let bytes = sim.node(attacker).capture.to_pcap_bytes(link);
        let decoded = decode_capture(&bytes).expect("pcap decodes");
        assert_eq!(decoded.len(), sim.node(attacker).capture.len());
        let acks = decoded
            .iter()
            .filter(
                |(_, f)| matches!(f, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE),
            )
            .count();
        assert_eq!(acks, 10, "{link:?}");
    }

    // The verifier agrees with the victim's own counter.
    let exchanges = AckVerifier::new(MacAddr::FAKE).verify(&sim.node(attacker).capture);
    assert_eq!(exchanges.len(), 10);
    // Every exchange completes within SIFS + ACK airtime (314 µs) exactly.
    assert!(exchanges.iter().all(|e| e.ack_ts_us - e.fake_ts_us == 314));
}

/// The Figure 3 storyline, across crates: deauth bursts captured in the
/// attacker's pcap, ACKs throughout, blocklist irrelevant.
#[test]
fn deauthing_blocklisting_ap_still_acks_through_the_whole_stack() {
    let ap_mac: MacAddr = "f2:6e:0b:aa:00:01".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), 2);
    let mut cfg = StationConfig::access_point(ap_mac, "PrivateNet");
    cfg.behavior = Behavior::deauthing_ap();
    let ap = sim.add_node(cfg, (0.0, 0.0));
    sim.station_mut(ap).block_mac(MacAddr::FAKE);
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (5.0, 0.0));
    sim.set_monitor(attacker, true);
    sim.set_retries(attacker, false);

    for i in 0..4u64 {
        sim.inject(
            i * 120_000,
            attacker,
            builder::fake_null_frame(ap_mac, MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim.run_until(1_500_000);

    assert_eq!(
        sim.station(ap).stats.acks_sent,
        4,
        "blocklist must not matter"
    );
    assert!(sim.station(ap).stats.deauths_sent >= 3);

    // Both the deauth frames and our ACKs are in the monitor capture.
    let decoded = decode_capture(
        &sim.node(attacker)
            .capture
            .to_pcap_bytes(LinkType::Ieee80211),
    )
    .unwrap();
    let deauths = decoded
        .iter()
        .filter(|(_, f)| f.info_column().starts_with("Deauthentication"))
        .count();
    assert!(deauths >= 3);
}

/// CTS elicitation through the whole stack, with a PMF victim.
#[test]
fn rts_cts_pipeline_with_pmf_victim() {
    let mut sim = Simulator::new(SimConfig::default(), 3);
    let mut cfg = StationConfig::client(victim_mac());
    cfg.behavior = Behavior::pmf_client();
    let victim = sim.add_node(cfg, (0.0, 0.0));
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (4.0, 0.0));
    sim.set_monitor(attacker, true);

    let plan = InjectionPlan {
        victim: victim_mac(),
        forged_ta: MacAddr::FAKE,
        kind: InjectionKind::Rts,
        rate_pps: 25,
        start_us: 0,
        duration_us: 1_000_000,
        bitrate: BitRate::Mbps11,
    };
    FakeFrameInjector::new(attacker).execute(&mut sim, &plan);
    sim.run_until(2_000_000);

    assert_eq!(sim.station(victim).stats.cts_sent, 25);
    let exchanges = AckVerifier::new(MacAddr::FAKE).verify(&sim.node(attacker).capture);
    assert_eq!(exchanges.len(), 25);
}

/// The attacker needs no keys: protected traffic on the network is
/// opaque to it, yet the ACK channel works regardless.
#[test]
fn attack_coexists_with_encrypted_network_traffic() {
    let ap_mac: MacAddr = "68:02:b8:00:00:07".parse().unwrap();
    let mut sim = Simulator::new(SimConfig::default(), 4);
    let ap = sim.add_node(
        StationConfig::access_point(ap_mac, "PrivateNet"),
        (1.0, 1.0),
    );
    let victim = sim.add_node(StationConfig::client(victim_mac()), (0.0, 0.0));
    sim.station_mut(victim).associate(ap_mac);
    sim.station_mut(ap).associate(victim_mac());
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (6.0, 0.0));
    sim.set_monitor(attacker, true);

    // Legitimate encrypted downlink traffic...
    for i in 0..20u64 {
        sim.inject(
            i * 40_000,
            ap,
            builder::protected_qos_data(victim_mac(), ap_mac, ap_mac, 100 + i as u16, 400),
            BitRate::Mbps54,
        );
    }
    // ...interleaved with the attack.
    for i in 0..20u64 {
        sim.inject(
            20_000 + i * 40_000,
            attacker,
            builder::fake_null_frame(victim_mac(), MacAddr::FAKE),
            BitRate::Mbps1,
        );
    }
    sim.run_until(2_000_000);

    // The victim acknowledged both the real and the fake traffic.
    assert_eq!(sim.station(victim).stats.acks_sent, 40);
    // And the fake-frame exchanges verify cleanly despite interleaving.
    let exchanges = AckVerifier::new(MacAddr::FAKE).verify(&sim.node(attacker).capture);
    assert_eq!(exchanges.len(), 20);
}
