//! The event queue: time-ordered, deterministically tie-broken.

use crate::node::NodeId;
use polite_wifi_frame::Frame;
use polite_wifi_phy::rate::BitRate;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Something that happens at a point in simulated time.
#[derive(Debug, Clone)]
pub enum Event {
    /// Run a station's timer work (`Station::poll`).
    Poll {
        /// Which node.
        node: NodeId,
    },
    /// A node attempts to start a queued (CSMA) transmission.
    TxAttempt {
        /// Which node.
        node: NodeId,
    },
    /// A node starts a scheduled response (SIFS-timed, bypasses CSMA).
    ResponseTx {
        /// Which node.
        node: NodeId,
        /// The response frame (ACK/CTS/...).
        frame: Frame,
        /// Transmit rate.
        rate: BitRate,
        /// Causal trace of the frame this responds to, if sampled.
        trace: Option<u64>,
    },
    /// A transmission ends at its transmitter.
    TxEnd {
        /// The transmitting node.
        node: NodeId,
    },
    /// A frame finishes arriving at a receiver.
    Arrival {
        /// The receiving node.
        node: NodeId,
        /// The transmitting node.
        from: NodeId,
        /// The frame.
        frame: Frame,
        /// Rate it was sent at.
        rate: BitRate,
        /// Time the frame started on the air (for overlap checks).
        start_us: u64,
        /// Band/channel the frame rode on.
        tune: crate::medium::Tune,
        /// Causal trace riding the transmission, if sampled.
        trace: Option<u64>,
    },
    /// The transmitter gave up waiting for an ACK.
    AckTimeout {
        /// The waiting node.
        node: NodeId,
        /// Token matching the transmission being timed.
        token: u64,
    },
    /// Fault injection: a device stall begins (the node freezes).
    StallStart {
        /// The stalling node.
        node: NodeId,
    },
    /// Fault injection: a device stall ends, optionally via cold boot.
    StallEnd {
        /// The recovering node.
        node: NodeId,
        /// Whether recovery is a cold boot (station state rebuilt).
        reboot: bool,
    },
    /// External injection: hand a frame to a node's transmit queue.
    Inject {
        /// The transmitting node.
        node: NodeId,
        /// The frame to send.
        frame: Frame,
        /// Rate to send at.
        rate: BitRate,
    },
}

impl Event {
    /// Stable event-kind name, the scheduler self-profiler's attribution
    /// key (and the leaf frame in collapsed-stack exports).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Poll { .. } => "poll",
            Event::TxAttempt { .. } => "tx_attempt",
            Event::ResponseTx { .. } => "response_tx",
            Event::TxEnd { .. } => "tx_end",
            Event::Arrival { .. } => "arrival",
            Event::AckTimeout { .. } => "ack_timeout",
            Event::StallStart { .. } => "stall_start",
            Event::StallEnd { .. } => "stall_end",
            Event::Inject { .. } => "inject",
        }
    }
}

/// An event bound to a time, ordered for the queue (earliest first; FIFO
/// among equal times via the sequence number).
#[derive(Debug, Clone)]
pub struct ScheduledEvent {
    /// When the event fires, in microseconds.
    pub at_us: u64,
    /// Monotonic tie-breaker.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}

impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at_us
            .cmp(&self.at_us)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at `at_us`.
    pub fn push(&mut self, at_us: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at_us, seq, event });
    }

    /// Pops the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.at_us)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll(node: usize) -> Event {
        Event::Poll { node: NodeId(node) }
    }

    #[test]
    fn earliest_first() {
        let mut q = EventQueue::new();
        q.push(30, poll(0));
        q.push(10, poll(1));
        q.push(20, poll(2));
        assert_eq!(q.pop().unwrap().at_us, 10);
        assert_eq!(q.pop().unwrap().at_us, 20);
        assert_eq!(q.pop().unwrap().at_us, 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(100, poll(i));
        }
        let mut order = Vec::new();
        while let Some(e) = q.pop() {
            if let Event::Poll { node } = e.event {
                order.push(node.0);
            }
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(5, poll(0));
        assert_eq!(q.peek_time(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
