//! Legacy 802.11 bit rates (DSSS/CCK and OFDM).
//!
//! Acknowledgements are transmitted at these legacy "basic" rates — the
//! reason the paper measured ACK CSI with an ESP32 rather than the Intel
//! 5300 CSI tool, which only reports HT frames.

use serde::{Deserialize, Serialize};

/// Modulation family of a rate, used by the SNR→BER link model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// Differential BPSK (1 Mb/s).
    Dbpsk,
    /// Differential QPSK (2 Mb/s).
    Dqpsk,
    /// Complementary code keying (5.5 / 11 Mb/s).
    Cck,
    /// BPSK OFDM (6 / 9 Mb/s).
    BpskOfdm,
    /// QPSK OFDM (12 / 18 Mb/s).
    QpskOfdm,
    /// 16-QAM OFDM (24 / 36 Mb/s).
    Qam16,
    /// 64-QAM OFDM (48 / 54 Mb/s).
    Qam64,
}

/// A legacy 802.11a/b/g bit rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BitRate {
    /// 1 Mb/s DSSS.
    Mbps1,
    /// 2 Mb/s DSSS.
    Mbps2,
    /// 5.5 Mb/s CCK.
    Mbps5_5,
    /// 11 Mb/s CCK.
    Mbps11,
    /// 6 Mb/s OFDM.
    Mbps6,
    /// 9 Mb/s OFDM.
    Mbps9,
    /// 12 Mb/s OFDM.
    Mbps12,
    /// 18 Mb/s OFDM.
    Mbps18,
    /// 24 Mb/s OFDM.
    Mbps24,
    /// 36 Mb/s OFDM.
    Mbps36,
    /// 48 Mb/s OFDM.
    Mbps48,
    /// 54 Mb/s OFDM.
    Mbps54,
}

impl BitRate {
    /// All rates, ascending by speed within each family.
    pub const ALL: [BitRate; 12] = [
        BitRate::Mbps1,
        BitRate::Mbps2,
        BitRate::Mbps5_5,
        BitRate::Mbps11,
        BitRate::Mbps6,
        BitRate::Mbps9,
        BitRate::Mbps12,
        BitRate::Mbps18,
        BitRate::Mbps24,
        BitRate::Mbps36,
        BitRate::Mbps48,
        BitRate::Mbps54,
    ];

    /// The mandatory basic rates ACKs may use on 2.4 GHz DSSS networks.
    pub const BASIC_DSSS: [BitRate; 2] = [BitRate::Mbps1, BitRate::Mbps2];

    /// The mandatory basic rates ACKs may use on OFDM (11a/g) networks.
    pub const BASIC_OFDM: [BitRate; 3] = [BitRate::Mbps6, BitRate::Mbps12, BitRate::Mbps24];

    /// Data rate in bits per second.
    pub fn bps(self) -> u64 {
        match self {
            BitRate::Mbps1 => 1_000_000,
            BitRate::Mbps2 => 2_000_000,
            BitRate::Mbps5_5 => 5_500_000,
            BitRate::Mbps11 => 11_000_000,
            BitRate::Mbps6 => 6_000_000,
            BitRate::Mbps9 => 9_000_000,
            BitRate::Mbps12 => 12_000_000,
            BitRate::Mbps18 => 18_000_000,
            BitRate::Mbps24 => 24_000_000,
            BitRate::Mbps36 => 36_000_000,
            BitRate::Mbps48 => 48_000_000,
            BitRate::Mbps54 => 54_000_000,
        }
    }

    /// Rate in the radiotap unit of 500 kb/s.
    pub fn radiotap_500kbps(self) -> u8 {
        (self.bps() / 500_000) as u8
    }

    /// True for DSSS/CCK rates (2.4 GHz only).
    pub fn is_dsss(self) -> bool {
        matches!(
            self,
            BitRate::Mbps1 | BitRate::Mbps2 | BitRate::Mbps5_5 | BitRate::Mbps11
        )
    }

    /// Modulation family.
    pub fn modulation(self) -> Modulation {
        match self {
            BitRate::Mbps1 => Modulation::Dbpsk,
            BitRate::Mbps2 => Modulation::Dqpsk,
            BitRate::Mbps5_5 | BitRate::Mbps11 => Modulation::Cck,
            BitRate::Mbps6 | BitRate::Mbps9 => Modulation::BpskOfdm,
            BitRate::Mbps12 | BitRate::Mbps18 => Modulation::QpskOfdm,
            BitRate::Mbps24 | BitRate::Mbps36 => Modulation::Qam16,
            BitRate::Mbps48 | BitRate::Mbps54 => Modulation::Qam64,
        }
    }

    /// Data bits per OFDM symbol (OFDM rates only).
    pub fn ofdm_bits_per_symbol(self) -> Option<u32> {
        match self {
            BitRate::Mbps6 => Some(24),
            BitRate::Mbps9 => Some(36),
            BitRate::Mbps12 => Some(48),
            BitRate::Mbps18 => Some(72),
            BitRate::Mbps24 => Some(96),
            BitRate::Mbps36 => Some(144),
            BitRate::Mbps48 => Some(192),
            BitRate::Mbps54 => Some(216),
            _ => None,
        }
    }

    /// Minimum SNR in dB for this rate to be usable (typical receiver
    /// sensitivity deltas).
    pub fn min_snr_db(self) -> f64 {
        match self {
            BitRate::Mbps1 => 2.0,
            BitRate::Mbps2 => 4.0,
            BitRate::Mbps5_5 => 6.0,
            BitRate::Mbps11 => 8.0,
            BitRate::Mbps6 => 5.0,
            BitRate::Mbps9 => 6.0,
            BitRate::Mbps12 => 7.0,
            BitRate::Mbps18 => 9.0,
            BitRate::Mbps24 => 12.0,
            BitRate::Mbps36 => 16.0,
            BitRate::Mbps48 => 20.0,
            BitRate::Mbps54 => 22.0,
        }
    }

    /// The rate a receiver answers with (ACK/CTS): the highest *basic*
    /// rate of the same family that does not exceed the eliciting frame's
    /// rate (IEEE 802.11-2016 §10.6.6.5).
    pub fn response_rate(self) -> BitRate {
        let basics: &[BitRate] = if self.is_dsss() {
            &Self::BASIC_DSSS
        } else {
            &Self::BASIC_OFDM
        };
        let mut best = basics[0];
        for &b in basics {
            if b.bps() <= self.bps() && b.bps() > best.bps() {
                best = b;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_rate_rules() {
        // A 54 Mb/s data frame is ACKed at 24 Mb/s (highest basic ≤ 54).
        assert_eq!(BitRate::Mbps54.response_rate(), BitRate::Mbps24);
        // An 11 Mb/s CCK frame is ACKed at 2 Mb/s.
        assert_eq!(BitRate::Mbps11.response_rate(), BitRate::Mbps2);
        // A 1 Mb/s frame is ACKed at 1 Mb/s.
        assert_eq!(BitRate::Mbps1.response_rate(), BitRate::Mbps1);
        // A 9 Mb/s frame is ACKed at 6 Mb/s.
        assert_eq!(BitRate::Mbps9.response_rate(), BitRate::Mbps6);
        // 12 Mb/s answers at 12 Mb/s.
        assert_eq!(BitRate::Mbps12.response_rate(), BitRate::Mbps12);
    }

    #[test]
    fn response_rates_are_legacy() {
        // The property the paper's footnote 3 relies on: every response
        // (ACK) rides a legacy basic rate.
        for r in BitRate::ALL {
            let resp = r.response_rate();
            assert!(
                BitRate::BASIC_DSSS.contains(&resp) || BitRate::BASIC_OFDM.contains(&resp),
                "{r:?} answered at non-basic {resp:?}"
            );
        }
    }

    #[test]
    fn radiotap_units() {
        assert_eq!(BitRate::Mbps1.radiotap_500kbps(), 2);
        assert_eq!(BitRate::Mbps5_5.radiotap_500kbps(), 11);
        assert_eq!(BitRate::Mbps54.radiotap_500kbps(), 108);
    }

    #[test]
    fn ofdm_symbol_bits() {
        assert_eq!(BitRate::Mbps6.ofdm_bits_per_symbol(), Some(24));
        assert_eq!(BitRate::Mbps54.ofdm_bits_per_symbol(), Some(216));
        assert_eq!(BitRate::Mbps11.ofdm_bits_per_symbol(), None);
    }

    #[test]
    fn min_snr_monotone_within_family() {
        assert!(BitRate::Mbps54.min_snr_db() > BitRate::Mbps6.min_snr_db());
        assert!(BitRate::Mbps11.min_snr_db() > BitRate::Mbps1.min_snr_db());
    }

    #[test]
    fn all_rates_distinct() {
        use std::collections::HashSet;
        let set: HashSet<u64> = BitRate::ALL.iter().map(|r| r.bps()).collect();
        assert_eq!(set.len(), 12);
    }
}
