//! The shared radio medium: propagation, link quality, and collisions.

use crate::faults::{GilbertElliott, SnrDegradation, FAULT_STREAM};
use crate::node::NodeId;
use polite_wifi_phy::fading::Fading;
use polite_wifi_phy::link;
use polite_wifi_phy::pathloss::{noise_floor_dbm, PathLoss};
use polite_wifi_phy::rate::BitRate;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Radio-environment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediumConfig {
    /// Large-scale propagation model.
    pub path_loss: PathLoss,
    /// Small-scale fading statistics per frame.
    pub fading: Fading,
    /// Receiver noise figure in dB.
    pub noise_figure_db: f64,
    /// Channel bandwidth in MHz (for the noise floor).
    pub bandwidth_mhz: f64,
    /// Energy-detect / carrier-sense threshold in dBm.
    pub cs_threshold_dbm: f64,
    /// Minimum power ratio (dB) for the stronger of two overlapping frames
    /// to survive (physical-layer capture).
    pub capture_threshold_db: f64,
    /// Hard propagation cutoff in metres, used by the spatially-sharded
    /// propagation modes: receivers beyond this range are not evaluated
    /// at all (their mean rx power sits tens of dB below the
    /// energy-detect floor). Ignored by the legacy all-pairs mode, and
    /// it is the interference-cell edge length of the grid mode.
    pub max_range_m: f64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            path_loss: PathLoss::indoor_2ghz4(),
            fading: Fading::Rician { k: 8.0 },
            noise_figure_db: 7.0,
            bandwidth_mhz: 20.0,
            cs_threshold_dbm: -82.0,
            capture_threshold_db: 10.0,
            max_range_m: 400.0,
        }
    }
}

/// A (band, channel) tune — two transmissions interact only when their
/// tunes match. Adjacent-channel leakage is out of scope (documented in
/// DESIGN.md).
pub type Tune = (polite_wifi_phy::band::Band, u8);

/// A transmission currently (or recently) on the air.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// Transmitting node.
    pub from: NodeId,
    /// Start of the frame on the air.
    pub start_us: u64,
    /// End of the frame on the air.
    pub end_us: u64,
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Band/channel the frame rides on.
    pub tune: Tune,
}

/// The shared medium. Owns the propagation RNG so link draws are
/// reproducible.
#[derive(Debug)]
pub struct Medium {
    config: MediumConfig,
    rng: ChaCha8Rng,
    active: Vec<Transmission>,
    noise_dbm: f64,
    /// Fault decisions draw from this dedicated stream (`seed ^
    /// FAULT_STREAM`), never from `rng`, so a clean plan leaves the
    /// propagation draws — and therefore every result — untouched.
    fault_rng: ChaCha8Rng,
    burst: Option<GilbertElliott>,
    burst_bad: bool,
    snr_faults: SnrDegradation,
    /// Seed for the keyed (per-reception) draw mode: fading and FER
    /// draws come from a ChaCha8 stream keyed on (seed, from, to,
    /// start_us) instead of the shared sequential stream, making each
    /// reception's randomness independent of evaluation *order* — the
    /// property that lets the cell grid skip out-of-range receivers
    /// without perturbing anyone else's draws.
    keyed_seed: u64,
}

/// Mixes one word into a splitmix64 hash state — the keyed-draw mode's
/// per-reception seed derivation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Outcome of receiving one frame at one receiver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxOutcome {
    /// Mean received power in dBm (before fading).
    pub rx_power_dbm: f64,
    /// Post-fading SNR in dB.
    pub snr_db: f64,
    /// Whether the preamble was detectable at all.
    pub detectable: bool,
    /// Whether the FCS check passes (link errors + collisions folded in).
    pub fcs_ok: bool,
    /// Whether an overlapping transmission corrupted this frame.
    pub collided: bool,
    /// Whether injected burst loss corrupted a frame that would
    /// otherwise have decoded (always `false` under a clean plan).
    pub fault_dropped: bool,
}

impl Medium {
    /// A medium with the given config, seeded deterministically.
    pub fn new(config: MediumConfig, seed: u64) -> Medium {
        use rand::SeedableRng;
        Medium {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x4d45_4449_554d), // "MEDIUM"
            noise_dbm: noise_floor_dbm(config.bandwidth_mhz, config.noise_figure_db),
            active: Vec::new(),
            fault_rng: ChaCha8Rng::seed_from_u64(seed ^ FAULT_STREAM),
            burst: None,
            burst_bad: false,
            snr_faults: SnrDegradation::default(),
            keyed_seed: seed ^ 0x004b_4559_4544, // "KEYED"
        }
    }

    /// Installs medium-level faults: burst loss and per-direction SNR
    /// penalties. Passing `None` / a zero degradation restores the clean
    /// medium.
    pub fn set_faults(&mut self, burst: Option<GilbertElliott>, snr: SnrDegradation) {
        self.burst = burst;
        self.burst_bad = false;
        self.snr_faults = snr;
    }

    /// The noise floor in dBm.
    pub fn noise_dbm(&self) -> f64 {
        self.noise_dbm
    }

    /// The configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Registers a transmission on the air.
    pub fn begin_transmission(&mut self, tx: Transmission) {
        self.active.push(tx);
    }

    /// Drops transmissions that ended before `now_us` (keeping a small
    /// grace window so arrival processing can still see them).
    pub fn prune(&mut self, now_us: u64) {
        self.active.retain(|t| t.end_us + 1_000 >= now_us);
    }

    /// Number of transmissions still held on the active list — the
    /// collision and carrier-sense scans are linear in this.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Mean received power at distance `d_m` from a transmitter.
    pub fn rx_power_dbm(&self, tx_power_dbm: f64, d_m: f64) -> f64 {
        self.config.path_loss.rx_power_dbm(tx_power_dbm, d_m)
    }

    /// Whether a node tuned to `tune` senses the channel busy at
    /// `now_us`. `exclude` skips the node's own transmission;
    /// `distance_to` maps an active transmitter to its distance from
    /// the sensing node — evaluated only for transmissions actually on
    /// the air, so the scan is O(active), not O(nodes).
    pub fn channel_busy(
        &self,
        now_us: u64,
        exclude: NodeId,
        tune: Tune,
        distance_to: impl Fn(NodeId) -> f64,
    ) -> bool {
        self.active.iter().any(|t| {
            t.from != exclude
                && t.tune == tune
                && t.start_us <= now_us
                && now_us < t.end_us
                && self.rx_power_dbm(t.tx_power_dbm, distance_to(t.from))
                    >= self.config.cs_threshold_dbm
        })
    }

    /// Like [`channel_busy`](Self::channel_busy), but built for the hot
    /// path of the keyed (spatially-sharded) modes: the caller supplies
    /// **squared** distances and the threshold comparison happens in the
    /// distance domain against a precomputed carrier-sense radius
    /// (inverse path loss), so the scan runs zero `log10`/`sqrt` calls
    /// per active entry. Equivalent to `channel_busy` up to the
    /// round-trip error of [`PathLoss::distance_for_loss_db`] (~1e-15
    /// relative); the legacy all-pairs mode keeps the exact power-domain
    /// scan so pinned results cannot drift.
    pub fn channel_busy_ranged(
        &self,
        now_us: u64,
        exclude: NodeId,
        tune: Tune,
        distance_sq_to: impl Fn(NodeId) -> f64,
    ) -> bool {
        // One inverse per distinct tx power per call — in practice every
        // transmitter runs the same power, so the transcendentals run once.
        let mut memo = (f64::NAN, 0.0); // (tx_power_dbm, cs_range²)
        for t in &self.active {
            if t.from == exclude || t.tune != tune || t.start_us > now_us || now_us >= t.end_us {
                continue;
            }
            if t.tx_power_dbm != memo.0 {
                let r = self.cs_range_m(t.tx_power_dbm);
                memo = (t.tx_power_dbm, r * r);
            }
            // The forward model clamps distances below at 0.1 m; mirror it.
            if distance_sq_to(t.from).max(0.01) <= memo.1 {
                return true;
            }
        }
        false
    }

    /// Distance within which a transmission at `tx_power_dbm` is sensed
    /// at or above the carrier-sense threshold (0 when it never is).
    fn cs_range_m(&self, tx_power_dbm: f64) -> f64 {
        let budget = tx_power_dbm - self.config.cs_threshold_dbm;
        if budget < self.config.path_loss.loss_db(0.1) {
            return 0.0;
        }
        self.config.path_loss.distance_for_loss_db(budget)
    }

    /// Evaluates the reception of a frame that occupied
    /// `[start_us, end_us]` on the air, at receiver `to`, `d_m` metres
    /// from the transmitter. `interferer_distance` maps other nodes to
    /// their distance from this receiver.
    /// `tune` is the band/channel the frame rode on; only co-channel
    /// interferers corrupt it.
    ///
    /// Draws ride the shared sequential propagation stream: every call
    /// consumes exactly one fading draw (plus, lazily, one FER draw),
    /// so results depend on the global evaluation order. This is the
    /// legacy all-pairs contract every pinned result rests on.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_rx(
        &mut self,
        from: NodeId,
        to: NodeId,
        start_us: u64,
        end_us: u64,
        tx_power_dbm: f64,
        d_m: f64,
        psdu_len: usize,
        rate: BitRate,
        tune: Tune,
        interferer_distance: impl Fn(NodeId) -> f64,
    ) -> RxOutcome {
        let mut rng = self.rng.clone();
        let out = self.evaluate_rx_with(
            &mut rng,
            from,
            to,
            start_us,
            end_us,
            tx_power_dbm,
            d_m,
            psdu_len,
            rate,
            tune,
            f64::INFINITY,
            interferer_distance,
        );
        self.rng = rng;
        out
    }

    /// Like [`evaluate_rx`](Self::evaluate_rx), but fading and FER
    /// draws come from a per-reception stream keyed on
    /// `(seed, from, to, start_us)` — half-duplex radios start at most
    /// one transmission per microsecond, so the key is collision-free.
    /// Reception outcomes become independent of evaluation order, which
    /// is what lets the cell-sharded propagation mode skip out-of-range
    /// receivers while staying draw-for-draw identical to the all-pairs
    /// oracle on the receptions both evaluate. The burst-loss fault
    /// chain still steps sequentially on the dedicated fault stream.
    #[allow(clippy::too_many_arguments)]
    pub fn evaluate_rx_keyed(
        &mut self,
        from: NodeId,
        to: NodeId,
        start_us: u64,
        end_us: u64,
        tx_power_dbm: f64,
        d_m: f64,
        psdu_len: usize,
        rate: BitRate,
        tune: Tune,
        interferer_distance: impl Fn(NodeId) -> f64,
    ) -> RxOutcome {
        use rand::SeedableRng;
        let mut key = splitmix64(self.keyed_seed ^ from.0 as u64);
        key = splitmix64(key ^ to.0 as u64);
        key = splitmix64(key ^ start_us);
        let mut rng = ChaCha8Rng::seed_from_u64(key);
        // In the spatially-sharded modes the medium simply does not
        // exist beyond `max_range_m`, for interferers as for receivers:
        // an interferer out there delivers mean power tens of dB under
        // the energy-detect floor, and cutting it off lets the collision
        // scan skip the path-loss `log10` for distant co-channel frames.
        let cutoff = self.config.max_range_m;
        self.evaluate_rx_with(
            &mut rng,
            from,
            to,
            start_us,
            end_us,
            tx_power_dbm,
            d_m,
            psdu_len,
            rate,
            tune,
            cutoff,
            interferer_distance,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_rx_with(
        &mut self,
        rng: &mut ChaCha8Rng,
        from: NodeId,
        to: NodeId,
        start_us: u64,
        end_us: u64,
        tx_power_dbm: f64,
        d_m: f64,
        psdu_len: usize,
        rate: BitRate,
        tune: Tune,
        interference_cutoff_m: f64,
        interferer_distance: impl Fn(NodeId) -> f64,
    ) -> RxOutcome {
        let rx_power = self.rx_power_dbm(tx_power_dbm, d_m);
        let mut faded = self.config.fading.faded_power_dbm(rx_power, rng);
        // Injected asymmetric link-budget penalty (0 under a clean plan).
        let penalty = self.snr_faults.penalty_db(from.0, to.0);
        if penalty != 0.0 {
            faded -= penalty;
        }
        let snr_db = faded - self.noise_dbm;
        let detectable = faded >= self.config.cs_threshold_dbm && link::detectable(snr_db);

        // Collision check: any other transmission overlapping this frame's
        // airtime whose power at the receiver is within the capture
        // threshold corrupts the frame.
        let mut collided = false;
        for t in &self.active {
            if t.from == from || t.tune != tune {
                continue;
            }
            let overlaps = t.start_us < end_us && start_us < t.end_us;
            if !overlaps {
                continue;
            }
            let d_i = interferer_distance(t.from);
            if d_i > interference_cutoff_m {
                continue;
            }
            let interferer_power = self.rx_power_dbm(t.tx_power_dbm, d_i);
            if faded - interferer_power < self.config.capture_threshold_db {
                collided = true;
                break;
            }
        }

        let fer = link::fer(psdu_len, rate, snr_db);
        // Lazy FER draw: only a frame that passed detection and
        // collision checks consumes a propagation draw. Undetectable or
        // collided receptions must leave `rng` exactly where the
        // pre-fault simulator left it, or clean runs stop being
        // byte-identical to pinned results.
        let clean_ok = detectable && !collided && rng.gen::<f64>() >= fer;

        // Burst loss steps its Markov chain on the dedicated fault
        // stream — one step per reception — and only *counts* as a
        // fault drop when it corrupted a frame that would otherwise
        // have decoded.
        let burst_hit = match self.burst {
            Some(ge) => ge.step(&mut self.burst_bad, &mut self.fault_rng),
            None => false,
        };
        let fcs_ok = clean_ok && !burst_hit;
        RxOutcome {
            rx_power_dbm: rx_power,
            snr_db,
            detectable,
            fcs_ok,
            collided,
            fault_dropped: clean_ok && burst_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH6: Tune = (polite_wifi_phy::band::Band::Ghz2, 6);
    const CH36: Tune = (polite_wifi_phy::band::Band::Ghz5, 36);

    fn medium() -> Medium {
        Medium::new(MediumConfig::default(), 1)
    }

    #[test]
    fn close_range_reception_is_reliable() {
        let mut m = medium();
        let mut ok = 0;
        for i in 0..200 {
            let out = m.evaluate_rx(
                NodeId(0),
                NodeId(1),
                i * 1000,
                i * 1000 + 400,
                20.0,
                5.0,
                28,
                BitRate::Mbps1,
                CH6,
                |_| f64::INFINITY,
            );
            if out.fcs_ok {
                ok += 1;
            }
        }
        assert!(ok >= 198, "only {ok}/200 at 5 m");
    }

    #[test]
    fn extreme_range_fails() {
        let mut m = medium();
        let out = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            0,
            400,
            20.0,
            1_000.0,
            28,
            BitRate::Mbps54,
            CH6,
            |_| f64::INFINITY,
        );
        assert!(!out.fcs_ok);
        assert!(!out.detectable);
    }

    #[test]
    fn overlapping_comparable_power_collides() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(7),
            start_us: 100,
            end_us: 500,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        // Victim frame overlaps [100,500]; interferer at the same distance.
        let out = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            200,
            600,
            20.0,
            5.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| 5.0,
        );
        assert!(out.collided);
        assert!(!out.fcs_ok);
    }

    #[test]
    fn capture_survives_weak_interferer() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(7),
            start_us: 100,
            end_us: 500,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        // Interferer is 100 m away (≫ capture threshold below our 2 m frame).
        let out = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            200,
            600,
            20.0,
            2.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| 100.0,
        );
        assert!(!out.collided, "strong frame should capture");
    }

    #[test]
    fn cross_channel_interferer_harmless() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(7),
            start_us: 100,
            end_us: 500,
            tx_power_dbm: 20.0,
            tune: CH36, // different band entirely
        });
        let out = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            200,
            600,
            20.0,
            5.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| 5.0,
        );
        assert!(!out.collided, "cross-channel frames must not collide");
    }

    #[test]
    fn carrier_sense_is_per_channel() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(3),
            start_us: 0,
            end_us: 1_000,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        assert!(m.channel_busy(500, NodeId(0), CH6, |_| 5.0));
        assert!(!m.channel_busy(500, NodeId(0), CH36, |_| 5.0));
    }

    #[test]
    fn non_overlapping_does_not_collide() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(7),
            start_us: 0,
            end_us: 100,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        let out = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            100,
            500,
            20.0,
            5.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| 5.0,
        );
        assert!(!out.collided);
    }

    #[test]
    fn channel_busy_detection() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(3),
            start_us: 0,
            end_us: 1_000,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        assert!(m.channel_busy(500, NodeId(0), CH6, |_| 5.0));
        assert!(!m.channel_busy(500, NodeId(0), CH6, |_| 10_000.0));
        // After the transmission ends the channel is free.
        assert!(!m.channel_busy(1_500, NodeId(0), CH6, |_| 5.0));
        // A node never senses its own transmission as busy.
        assert!(!m.channel_busy(500, NodeId(3), CH6, |_| 5.0));
    }

    /// The distance-domain carrier-sense scan must agree with the exact
    /// power-domain one across the sensing range (it exists so the hot
    /// path can drop the per-entry `log10`, not to change physics).
    #[test]
    fn ranged_carrier_sense_matches_exact_scan() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(3),
            start_us: 0,
            end_us: 1_000,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        for d in [0.05, 0.5, 5.0, 50.0, 114.0, 116.0, 150.0, 1_000.0] {
            assert_eq!(
                m.channel_busy(500, NodeId(0), CH6, |_| d),
                m.channel_busy_ranged(500, NodeId(0), CH6, |_| d * d),
                "disagree at {d} m"
            );
        }
        // Same tune/time/exclusion filters as the exact scan.
        assert!(!m.channel_busy_ranged(500, NodeId(3), CH6, |_| 25.0));
        assert!(!m.channel_busy_ranged(500, NodeId(0), CH36, |_| 25.0));
        assert!(!m.channel_busy_ranged(1_500, NodeId(0), CH6, |_| 25.0));
    }

    #[test]
    fn prune_keeps_recent() {
        let mut m = medium();
        m.begin_transmission(Transmission {
            from: NodeId(1),
            start_us: 0,
            end_us: 100,
            tx_power_dbm: 20.0,
            tune: CH6,
        });
        m.prune(500);
        assert_eq!(m.active.len(), 1, "grace window keeps it");
        m.prune(10_000);
        assert!(m.active.is_empty());
    }

    #[test]
    fn undetectable_rx_consumes_no_fer_draw() {
        // Regression: an undetectable reception must leave the
        // propagation RNG exactly where the pre-fault simulator left it
        // — one fading draw, no FER draw — or every clean result pinned
        // before the fault layer existed silently drifts.
        use rand::SeedableRng;
        let cfg = MediumConfig::default();
        let mut m = Medium::new(cfg, 42);
        let far = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            0,
            400,
            20.0,
            5_000.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| f64::INFINITY,
        );
        assert!(!far.detectable);
        let near = m.evaluate_rx(
            NodeId(0),
            NodeId(1),
            1_000,
            1_400,
            20.0,
            5.0,
            28,
            BitRate::Mbps1,
            CH6,
            |_| f64::INFINITY,
        );

        // Replay the expected draw sequence on a parallel RNG: the far
        // frame fades but never reaches the FER draw.
        let mut rng = ChaCha8Rng::seed_from_u64(42 ^ 0x4d45_4449_554d);
        let far_power = cfg.path_loss.rx_power_dbm(20.0, 5_000.0);
        let _ = cfg.fading.faded_power_dbm(far_power, &mut rng);
        let near_power = cfg.path_loss.rx_power_dbm(20.0, 5.0);
        let faded = cfg.fading.faded_power_dbm(near_power, &mut rng);
        let noise = noise_floor_dbm(cfg.bandwidth_mhz, cfg.noise_figure_db);
        assert!(
            (near.snr_db - (faded - noise)).abs() < 1e-9,
            "far reception shifted the propagation stream: {} vs {}",
            near.snr_db,
            faded - noise
        );
    }

    /// The keyed-draw mode's defining property: a reception's outcome
    /// depends only on its (from, to, start_us) key, not on how many
    /// other receptions were evaluated before it — so skipping
    /// out-of-range receivers cannot perturb anyone else's draws.
    #[test]
    fn keyed_draws_are_order_independent() {
        let eval = |m: &mut Medium, start: u64| {
            m.evaluate_rx_keyed(
                NodeId(0),
                NodeId(1),
                start,
                start + 100,
                20.0,
                30.0,
                1500,
                BitRate::Mbps54,
                CH6,
                |_| f64::INFINITY,
            )
        };
        // Run A: evaluate receptions 0..20. Run B: only the even ones.
        let mut a = Medium::new(MediumConfig::default(), 9);
        let full: Vec<RxOutcome> = (0..20).map(|i| eval(&mut a, i * 1_000)).collect();
        let mut b = Medium::new(MediumConfig::default(), 9);
        let sparse: Vec<RxOutcome> = (0..20)
            .step_by(2)
            .map(|i| eval(&mut b, i * 1_000))
            .collect();
        for (k, out) in sparse.iter().enumerate() {
            assert_eq!(*out, full[2 * k], "reception {k} drifted");
        }
        // ...and a different medium seed gives different realisations.
        let mut c = Medium::new(MediumConfig::default(), 10);
        let other: Vec<RxOutcome> = (0..20).map(|i| eval(&mut c, i * 1_000)).collect();
        assert_ne!(full, other);
    }

    #[test]
    fn determinism_under_seed() {
        let run = |seed: u64| {
            let mut m = Medium::new(MediumConfig::default(), seed);
            (0..50)
                .map(|i| {
                    m.evaluate_rx(
                        NodeId(0),
                        NodeId(1),
                        i * 1000,
                        i * 1000 + 100,
                        20.0,
                        30.0,
                        1500,
                        BitRate::Mbps54,
                        CH6,
                        |_| f64::INFINITY,
                    )
                    .fcs_ok
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
