//! `trace_query`: offline analysis of experiment result envelopes.
//!
//! Every experiment binary writes the unified envelope (see
//! `polite-wifi-harness`); this tool reads one or more of those JSON
//! files back and answers the questions the paper's evaluation keeps
//! asking, without re-running anything:
//!
//! * **SIFS turnaround percentiles per device class** — from the
//!   `mac.*_turnaround_us.<class>` log2 histograms (`ghz2` = 10 µs SIFS,
//!   `ghz5` = 16 µs);
//! * **frame-fate breakdown per fault profile** — the `frame.fate.*`
//!   counters grouped by each envelope's `faults` field;
//! * **retry-chain depth distribution** — the `sim.retry_chain_depth`
//!   histogram (depth observed when a retry chain resolves, by ACK or by
//!   drop).
//!
//! Exporters:
//!
//! ```text
//! trace_query results/a.json results/b.json      # text report on stdout
//! trace_query results/a.json --flame out.folded  # collapsed stacks from the
//!                                                #   scheduler self-profiler
//!                                                #   (virtual-time weights;
//!                                                #   feed to flamegraph.pl)
//! trace_query results/a.json --prom out.prom     # Prometheus/OpenMetrics text
//! ```
//!
//! And one live mode: `--follow http://HOST:PORT/watch/<id>` tails a
//! running `polite-wifi-d` job's flight recorder (the chunked SSE
//! stream, see DESIGN.md §15) and renders each event as a row of a
//! trials / frames-per-second / frame-fate table until the terminal
//! `job_finished` event.
//!
//! Everything is zero-dependency (the vendored `polite_wifi_obs::json`
//! parser) and deterministic: inputs are processed in argument order and
//! every grouping is emitted in sorted order, so the same envelopes
//! always produce byte-identical reports. (`--follow` output is as
//! live as the job it watches, of course.)

use polite_wifi_daemon::{SseClient, SseEvent};
use polite_wifi_obs::json::{parse, JsonValue};
use polite_wifi_obs::openmetrics;
use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::path::PathBuf;

/// One parsed result envelope, reduced to what the queries need.
struct Envelope {
    experiment: String,
    faults: String,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Hist>,
    /// Scheduler self-profiler: event kind → (count, virt_total_us).
    profiler: BTreeMap<String, (u64, u64)>,
}

/// A log2 histogram as exported in the envelope. Bucket index is the
/// bit length of the recorded value (`polite_wifi_obs::bucket_index`),
/// so bucket `i >= 1` covers `[2^(i-1), 2^i - 1]` and bucket 0 is zero.
#[derive(Default, Clone)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: BTreeMap<usize, u64>,
}

impl Hist {
    fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&i, &n) in &other.buckets {
            *self.buckets.entry(i).or_insert(0) += n;
        }
    }

    /// Percentile estimate: the upper bound of the bucket the rank falls
    /// in, clamped to the recorded `[min, max]` (exact when all samples
    /// share one value — the SIFS case the paper's claim rests on).
    fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&i, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

fn parse_hist(v: &JsonValue) -> Option<Hist> {
    let field = |k: &str| v.get(k).and_then(|x| x.as_f64()).map(|f| f as u64);
    let mut buckets = BTreeMap::new();
    if let Some(obj) = v.get("buckets").and_then(|b| b.as_object()) {
        for (idx, n) in obj {
            let i: usize = idx.parse().ok()?;
            buckets.insert(i, n.as_f64()? as u64);
        }
    }
    Some(Hist {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets,
    })
}

fn load(path: &PathBuf) -> Result<Envelope, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = parse(&raw).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    let str_field = |k: &str| {
        doc.get(k)
            .and_then(|v| v.as_str())
            .unwrap_or("unknown")
            .to_string()
    };
    let obs = doc.get("obs").ok_or_else(|| {
        format!(
            "{}: no `obs` field (not a result envelope?)",
            path.display()
        )
    })?;
    let mut counters = BTreeMap::new();
    if let Some(obj) = obs.get("counters").and_then(|c| c.as_object()) {
        for (name, v) in obj {
            if let Some(n) = v.as_f64() {
                counters.insert(name.clone(), n as u64);
            }
        }
    }
    let mut histograms = BTreeMap::new();
    if let Some(obj) = obs.get("histograms").and_then(|h| h.as_object()) {
        for (name, v) in obj {
            if let Some(h) = parse_hist(v) {
                histograms.insert(name.clone(), h);
            }
        }
    }
    let mut profiler = BTreeMap::new();
    if let Some(obj) = obs.get("profiler").and_then(|p| p.as_object()) {
        for (kind, v) in obj {
            let count = v.get("count").and_then(|x| x.as_f64()).unwrap_or(0.0) as u64;
            let virt = v
                .get("virt_total_us")
                .and_then(|x| x.as_f64())
                .unwrap_or(0.0) as u64;
            profiler.insert(kind.clone(), (count, virt));
        }
    }
    Ok(Envelope {
        experiment: str_field("experiment"),
        faults: str_field("faults"),
        counters,
        histograms,
        profiler,
    })
}

/// The `{experiment=…,faults=…}` label set identifying one envelope.
fn env_labels(env: &Envelope) -> String {
    openmetrics::label_set(&[("experiment", &env.experiment), ("faults", &env.faults)])
}

/// Renders all envelopes as Prometheus/OpenMetrics exposition text via
/// the shared [`openmetrics`] writer (the daemon's `/metrics` endpoint
/// uses the same one): counters as `counter`, histograms as
/// `_count`/`_sum`/`_min`/`_max` gauges, one sample per envelope
/// labelled with its experiment and fault profile.
fn render_prom(envelopes: &[Envelope]) -> String {
    // TYPE lines must precede samples and appear once per metric, so
    // collect the sorted union of names first.
    let mut counter_names: Vec<&str> = Vec::new();
    let mut hist_names: Vec<&str> = Vec::new();
    for env in envelopes {
        counter_names.extend(env.counters.keys().map(|s| s.as_str()));
        hist_names.extend(env.histograms.keys().map(|s| s.as_str()));
    }
    counter_names.sort_unstable();
    counter_names.dedup();
    hist_names.sort_unstable();
    hist_names.dedup();

    let mut w = openmetrics::OpenMetricsWriter::new();
    for name in counter_names {
        let samples: Vec<(String, u64)> = envelopes
            .iter()
            .filter_map(|env| env.counters.get(name).map(|v| (env_labels(env), *v)))
            .collect();
        w.counter(name, &samples);
    }
    for name in hist_names {
        for suffix in ["count", "sum", "min", "max"] {
            let samples: Vec<(String, u64)> = envelopes
                .iter()
                .filter_map(|env| {
                    env.histograms.get(name).map(|h| {
                        let v = match suffix {
                            "count" => h.count,
                            "sum" => h.sum,
                            "min" => h.min,
                            _ => h.max,
                        };
                        (env_labels(env), v)
                    })
                })
                .collect();
            w.gauge(&format!("{name}_{suffix}"), &samples);
        }
    }
    w.finish()
}

/// Renders the merged scheduler self-profiler as flamegraph-collapsed
/// stacks, weighted by deterministic virtual time (µs).
fn render_flame(envelopes: &[Envelope]) -> String {
    let mut merged: BTreeMap<&str, u64> = BTreeMap::new();
    for env in envelopes {
        for (kind, &(_, virt)) in &env.profiler {
            *merged.entry(kind).or_insert(0) += virt;
        }
    }
    let mut out = String::new();
    for (kind, virt) in merged {
        out.push_str(&format!("scheduler;{kind} {virt}\n"));
    }
    out
}

fn print_report(envelopes: &[Envelope]) {
    println!(
        "trace_query: {} envelope(s) — {}",
        envelopes.len(),
        envelopes
            .iter()
            .map(|e| e.experiment.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // SIFS turnaround percentiles per device class, merged across
    // envelopes: `mac.<resp>_turnaround_us.<class>`.
    let mut per_class: BTreeMap<String, Hist> = BTreeMap::new();
    for env in envelopes {
        for (name, h) in &env.histograms {
            if let Some(rest) = name.strip_prefix("mac.") {
                if rest.contains("_turnaround_us.") {
                    per_class.entry(name.clone()).or_default().merge(h);
                }
            }
        }
    }
    println!("\nSIFS turnaround per device class (µs):");
    if per_class.is_empty() {
        println!("  (no per-class turnaround histograms in these envelopes)");
    } else {
        println!(
            "  {:<34} {:>8} {:>6} {:>6} {:>6}",
            "histogram", "count", "p50", "p90", "p99"
        );
        for (name, h) in &per_class {
            println!(
                "  {:<34} {:>8} {:>6} {:>6} {:>6}",
                name,
                h.count,
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99)
            );
        }
    }

    // Frame-fate breakdown grouped by fault profile.
    let mut per_faults: BTreeMap<&str, BTreeMap<&str, u64>> = BTreeMap::new();
    for env in envelopes {
        let group = per_faults.entry(env.faults.as_str()).or_default();
        for (name, &v) in &env.counters {
            if let Some(fate) = name.strip_prefix("frame.fate.") {
                *group.entry(fate).or_insert(0) += v;
            }
        }
    }
    println!("\nframe fates per fault profile:");
    for (faults, fates) in &per_faults {
        let total: u64 = fates.values().sum();
        if total == 0 {
            println!("  {faults}: (no addressed frames)");
            continue;
        }
        println!("  {faults} ({total} addressed frames):");
        for (fate, &n) in fates {
            println!(
                "    {:<18} {:>10}  ({:.1}%)",
                fate,
                n,
                n as f64 / total as f64 * 100.0
            );
        }
    }

    // Retry-chain depth distribution, merged.
    let mut depth = Hist::default();
    for env in envelopes {
        if let Some(h) = env.histograms.get("sim.retry_chain_depth") {
            depth.merge(h);
        }
    }
    println!("\nretry-chain depth (retries before the exchange resolved):");
    if depth.count == 0 {
        println!("  (no resolved retry chains in these envelopes)");
    } else {
        for (&i, &n) in &depth.buckets {
            let range = if i == 0 {
                "0".to_string()
            } else if i == 1 {
                "1".to_string()
            } else {
                format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1)
            };
            println!("  depth {:<8} {:>10}", range, n);
        }
        println!(
            "  chains {}   p50 {}   max {}",
            depth.count,
            depth.percentile(0.50),
            depth.max
        );
    }
}

// ===== live follow mode (`--follow http://HOST:PORT/watch/<id>`) =====

/// Live state accumulated while tailing a `/watch` stream: the latest
/// trial progress, throughput and frame-fate totals, rendered as one
/// table row per event.
#[derive(Default)]
struct FollowTable {
    trials_done: u64,
    trials_total: u64,
    frames_per_sec: u64,
    /// delivered, fer_dropped, collided, stalled.
    fates: [u64; 4],
}

impl FollowTable {
    fn header() -> String {
        format!(
            "{:>5}  {:<18} {:>11} {:>9} {:>10} {:>9} {:>9} {:>8}  {}",
            "seq", "event", "trials", "frames/s", "delivered", "fer_drop", "collided", "stalled",
            "detail"
        )
    }

    /// Folds one SSE event into the running state and renders its row.
    fn line(&mut self, event: &SseEvent) -> String {
        let doc = parse(&event.data).ok();
        let field = |k: &str| {
            doc.as_ref()
                .and_then(|d| d.get(k))
                .and_then(|v| v.as_f64())
                .map(|f| f as u64)
        };
        match event.event.as_str() {
            "trial_started" | "trial_finished" => {
                if let Some(done) = field("done") {
                    self.trials_done = done;
                }
                if let Some(total) = field("total") {
                    self.trials_total = total;
                }
            }
            "sample" => {
                if let Some(v) = field("frames_per_sec") {
                    self.frames_per_sec = v;
                }
                for (slot, name) in ["delivered", "fer_dropped", "collided", "stalled"]
                    .iter()
                    .enumerate()
                {
                    if let Some(v) = field(name) {
                        self.fates[slot] = v;
                    }
                }
            }
            _ => {}
        }
        let detail = doc
            .as_ref()
            .and_then(|d| d.get("detail"))
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string();
        format!(
            "{:>5}  {:<18} {:>7}/{:<3} {:>9} {:>10} {:>9} {:>9} {:>8}  {}",
            event.id.unwrap_or(0),
            event.event,
            self.trials_done,
            self.trials_total,
            self.frames_per_sec,
            self.fates[0],
            self.fates[1],
            self.fates[2],
            self.fates[3],
            detail,
        )
    }
}

/// Splits `http://HOST:PORT/watch/<id>` into a resolved socket address
/// and the request path.
fn resolve_watch_url(url: &str) -> Result<(std::net::SocketAddr, String), String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("--follow expects http://HOST:PORT/watch/<id>, got `{url}`"))?;
    let (authority, path) = match rest.split_once('/') {
        Some((a, p)) => (a, format!("/{p}")),
        None => return Err(format!("`{url}` has no /watch/<id> path")),
    };
    if !path.starts_with("/watch/") {
        return Err(format!("`{url}`: --follow tails /watch/<id> streams"));
    }
    let addr = authority
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve `{authority}`: {e}"))?
        .next()
        .ok_or_else(|| format!("cannot resolve `{authority}`"))?;
    Ok((addr, path))
}

/// Tails a live `/watch` stream, one table row per event, until the
/// terminal `job_finished` event (or the server ends the stream).
fn follow(url: &str) -> Result<(), String> {
    let (addr, path) = resolve_watch_url(url)?;
    let (status, mut client) =
        SseClient::connect(addr, &path, None).map_err(|e| format!("{url}: {e}"))?;
    if status != 200 {
        return Err(format!("{url}: server answered HTTP {status}"));
    }
    println!("following {url}");
    println!("{}", FollowTable::header());
    let mut table = FollowTable::default();
    while let Some(event) = client.next_event().map_err(|e| format!("{url}: {e}"))? {
        let terminal = event.event == "job_finished";
        println!("{}", table.line(&event));
        if terminal {
            break;
        }
    }
    Ok(())
}

struct Args {
    inputs: Vec<PathBuf>,
    flame: Option<PathBuf>,
    prom: Option<PathBuf>,
    follow: Option<String>,
}

const USAGE: &str = "usage: trace_query ENVELOPE.json [MORE.json ...] \
[--flame OUT.folded] [--prom OUT.prom]\n       \
trace_query --follow http://HOST:PORT/watch/<id>";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        inputs: Vec::new(),
        flame: None,
        prom: None,
        follow: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flame" => {
                let raw = args.next().ok_or("--flame needs a value")?;
                out.flame = Some(PathBuf::from(raw));
            }
            "--prom" => {
                let raw = args.next().ok_or("--prom needs a value")?;
                out.prom = Some(PathBuf::from(raw));
            }
            "--follow" => {
                let raw = args.next().ok_or("--follow needs a URL")?;
                out.follow = Some(raw);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}` (try --help)"))
            }
            other => out.inputs.push(PathBuf::from(other)),
        }
    }
    if out.follow.is_some() && !out.inputs.is_empty() {
        return Err("--follow is a live mode; don't mix it with envelope files".to_string());
    }
    if out.follow.is_none() && out.inputs.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(url) = &args.follow {
        if let Err(msg) = follow(url) {
            eprintln!("{msg}");
            std::process::exit(1);
        }
        return;
    }
    let mut envelopes = Vec::new();
    for path in &args.inputs {
        match load(path) {
            Ok(env) => envelopes.push(env),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }

    print_report(&envelopes);

    if let Some(path) = &args.flame {
        let folded = render_flame(&envelopes);
        if folded.is_empty() {
            eprintln!(
                "warning: no profiler data in these envelopes — {} will be empty",
                path.display()
            );
        }
        if let Err(e) = std::fs::write(path, folded) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("\n[collapsed stacks written to {}]", path.display());
    }
    if let Some(path) = &args.prom {
        if let Err(e) = std::fs::write(path, render_prom(&envelopes)) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("[prometheus metrics written to {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Hist {
        let mut h = Hist::default();
        for &v in values {
            let i = (u64::BITS - v.leading_zeros()) as usize;
            h.count += 1;
            h.sum += v;
            h.min = if h.count == 1 { v } else { h.min.min(v) };
            h.max = h.max.max(v);
            *h.buckets.entry(i).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn percentile_is_exact_for_constant_samples() {
        // The SIFS pin: every ACK turnaround is exactly 10 µs.
        let h = hist_of(&[10; 40]);
        assert_eq!(h.percentile(0.50), 10);
        assert_eq!(h.percentile(0.99), 10);
    }

    #[test]
    fn percentile_walks_buckets_in_order() {
        let mut values = vec![1u64; 90];
        values.extend([100u64; 10]);
        let h = hist_of(&values);
        assert_eq!(h.percentile(0.50), 1);
        // p99 lands in 100's bucket [64,127]; clamped to max = 100.
        assert_eq!(h.percentile(0.99), 100);
    }

    #[test]
    fn prom_rendering_matches_the_pinned_shape() {
        let mut counters = BTreeMap::new();
        counters.insert("sim.frames_txed".to_string(), 4u64);
        let env = Envelope {
            experiment: "e".into(),
            faults: "clean".into(),
            counters,
            histograms: BTreeMap::new(),
            profiler: BTreeMap::new(),
        };
        let text = render_prom(&[env]);
        assert_eq!(
            text,
            "# TYPE polite_wifi_sim_frames_txed counter\n\
             polite_wifi_sim_frames_txed{experiment=\"e\",faults=\"clean\"} 4\n\
             # EOF\n"
        );
    }

    #[test]
    fn follow_table_accumulates_progress_and_fates() {
        let mut table = FollowTable::default();
        let event = |id: u64, kind: &str, data: &str| SseEvent {
            id: Some(id),
            event: kind.to_string(),
            data: data.to_string(),
        };

        let row = table.line(&event(0, "job_accepted", r#"{"seq":0,"kind":"job_accepted","job":1,"trials":8}"#));
        assert!(row.starts_with("    0  job_accepted"), "{row}");

        table.line(&event(1, "trial_finished", r#"{"seq":1,"kind":"trial_finished","done":3,"total":8}"#));
        assert_eq!(table.trials_done, 3);
        assert_eq!(table.trials_total, 8);

        let row = table.line(&event(
            2,
            "sample",
            r#"{"seq":2,"kind":"sample","trials_absorbed":3,"frames_per_sec":1200,"events_per_sec":90,"cells_occupied":0,"delivered":40,"fer_dropped":2,"collided":1,"stalled":0}"#,
        ));
        assert_eq!(table.frames_per_sec, 1200);
        assert_eq!(table.fates, [40, 2, 1, 0]);
        assert!(row.contains("      3/8 "), "trials column: {row}");
        assert!(row.contains("1200"), "{row}");

        // The terminal event carries its detail through to the row.
        let row = table.line(&event(3, "job_finished", r#"{"seq":3,"kind":"job_finished","detail":"done","cached":0}"#));
        assert!(row.ends_with("done"), "{row}");
    }

    #[test]
    fn follow_urls_must_point_at_a_watch_stream() {
        let (addr, path) = resolve_watch_url("http://127.0.0.1:7632/watch/3").unwrap();
        assert_eq!(addr.port(), 7632);
        assert_eq!(path, "/watch/3");
        assert!(resolve_watch_url("https://x/watch/1").is_err());
        assert!(resolve_watch_url("http://127.0.0.1:7632").is_err());
        assert!(resolve_watch_url("http://127.0.0.1:7632/jobs/1").is_err());
    }

    #[test]
    fn flame_output_merges_and_sorts() {
        let env = |virt: u64| Envelope {
            experiment: "e".into(),
            faults: "clean".into(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            profiler: [
                ("poll".to_string(), (1, virt)),
                ("arrival".to_string(), (2, 5)),
            ]
            .into_iter()
            .collect(),
        };
        let folded = render_flame(&[env(10), env(7)]);
        assert_eq!(folded, "scheduler;arrival 10\nscheduler;poll 17\n");
    }
}
