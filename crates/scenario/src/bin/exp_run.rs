//! `exp_run SCENARIO.json [flags]` — the single experiment entry point.
//!
//! Reads a scenario file, applies its run defaults, lets the usual
//! harness flags (`--trials/--workers/--seed/--quick/--faults/…`)
//! override them, and dispatches to the runner the spec names.
//!
//! Extra modes:
//! * `exp_run --list` prints every registered runner.
//! * `exp_run --fmt SCENARIO.json` rewrites the file in canonical form
//!   (the form the golden tests pin byte-exactly).
//! * `exp_run --check SCENARIO.json` parses and validates only.

use polite_wifi_harness::RunArgs;
use polite_wifi_scenario::{run_spec, runner_names, ScenarioSpec};
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("exp_run: {msg}");
    exit(2);
}

fn load(path: &str) -> ScenarioSpec {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read `{path}`: {e}")),
    };
    match ScenarioSpec::parse(&text) {
        Ok(spec) => spec,
        Err(e) => fail(&format!("`{path}`: {e}")),
    }
}

fn main() -> std::io::Result<()> {
    let mut argv = std::env::args().skip(1).peekable();
    let first = match argv.peek().map(String::as_str) {
        None | Some("--help") => {
            println!(
                "usage: exp_run SCENARIO.json [harness flags]\n       \
                 exp_run --list | --fmt SCENARIO.json | --check SCENARIO.json"
            );
            return Ok(());
        }
        Some("--list") => {
            for name in runner_names() {
                println!("{name}");
            }
            return Ok(());
        }
        Some(mode @ ("--fmt" | "--check")) => {
            let mode = mode.to_string();
            argv.next();
            let path = argv
                .next()
                .unwrap_or_else(|| fail(&format!("{mode} needs a scenario path")));
            let spec = load(&path);
            if mode == "--fmt" {
                std::fs::write(&path, spec.to_canonical_json())?;
                println!("canonicalised {path}");
            } else {
                println!(
                    "{path}: ok (runner `{}`, slug `{}`)",
                    spec.runner, spec.slug
                );
            }
            return Ok(());
        }
        Some(_) => argv.next().unwrap(),
    };
    let spec = load(&first);
    let args = match RunArgs::parse(argv, spec.run_args()) {
        Ok(args) => args,
        Err(e) => fail(&e),
    };
    let status = run_spec(&spec, args)?;
    if status != 0 {
        exit(status);
    }
    Ok(())
}
