//! Frequency bands and their MAC-timing parameters.

use serde::{Deserialize, Serialize};

/// An 802.11 operating band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Band {
    /// 2.4 GHz (802.11b/g/n): SIFS = 10 µs.
    Ghz2,
    /// 5 GHz (802.11a/n/ac): SIFS = 16 µs.
    Ghz5,
}

impl Band {
    /// Short Interframe Space in microseconds — the paper's protagonist.
    /// An ACK must start transmitting this long after the frame ends,
    /// which rules out any cryptographic validation first.
    pub fn sifs_us(self) -> u32 {
        match self {
            Band::Ghz2 => 10,
            Band::Ghz5 => 16,
        }
    }

    /// Slot time in microseconds (short slot on 2.4 GHz ERP, 9 µs on 5 GHz).
    pub fn slot_us(self) -> u32 {
        match self {
            Band::Ghz2 => 9,
            Band::Ghz5 => 9,
        }
    }

    /// DCF Interframe Space: SIFS + 2 × slot.
    pub fn difs_us(self) -> u32 {
        self.sifs_us() + 2 * self.slot_us()
    }

    /// Centre frequency in MHz for a channel number in this band.
    pub fn channel_freq_mhz(self, channel: u8) -> u16 {
        match self {
            Band::Ghz2 => match channel {
                14 => 2484,
                c => 2407 + 5 * c as u16,
            },
            Band::Ghz5 => 5000 + 5 * channel as u16,
        }
    }

    /// Wavelength in metres at a channel's centre frequency.
    pub fn wavelength_m(self, channel: u8) -> f64 {
        299_792_458.0 / (self.channel_freq_mhz(channel) as f64 * 1e6)
    }

    /// Default channel used by the experiments (6 on 2.4 GHz, 36 on 5 GHz).
    pub fn default_channel(self) -> u8 {
        match self {
            Band::Ghz2 => 6,
            Band::Ghz5 => 36,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sifs_matches_the_paper() {
        assert_eq!(Band::Ghz2.sifs_us(), 10);
        assert_eq!(Band::Ghz5.sifs_us(), 16);
    }

    #[test]
    fn difs_derivation() {
        assert_eq!(Band::Ghz2.difs_us(), 28);
        assert_eq!(Band::Ghz5.difs_us(), 34);
    }

    #[test]
    fn channel_frequencies() {
        assert_eq!(Band::Ghz2.channel_freq_mhz(1), 2412);
        assert_eq!(Band::Ghz2.channel_freq_mhz(6), 2437);
        assert_eq!(Band::Ghz2.channel_freq_mhz(14), 2484);
        assert_eq!(Band::Ghz5.channel_freq_mhz(36), 5180);
    }

    #[test]
    fn wavelength_about_12cm_at_2ghz4() {
        let wl = Band::Ghz2.wavelength_m(6);
        assert!((0.12..0.13).contains(&wl), "wavelength {wl}");
    }
}
