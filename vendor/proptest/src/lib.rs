//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so this crate
//! reimplements the property-testing surface the workspace's test
//! suites use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, `Just`, ranges
//! and tuples as strategies, `any::<T>()`, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its inputs and case number
//!   but is not minimised;
//! * deterministic seeding — each test function derives its RNG seed
//!   from its own path, so failures reproduce across runs and machines.

#![allow(clippy::all)] // vendored stub: keep diff-to-upstream minimal, not lint-clean

pub mod test_runner {
    /// Outcome of one generated case's body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator for value generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test path),
        /// so every test gets a distinct but reproducible stream.
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among equally-weighted boxed branches
    /// (`prop_oneof!`'s engine).
    pub struct Union<T> {
        branches: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(branches: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.branches.len() as u64) as usize;
            self.branches[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64) + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as u64) - (*self.start() as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    self.start() + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t
                        * (1.0 / (1u64 << 53) as $t);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spread over a wide range.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit - 0.5) * 2e6
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy form of [`Arbitrary`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors with lengths drawn from `len` and elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option<T>` strategy: `None` half the time.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use crate::strategy::{Arbitrary, BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// An index into a slice of a length not yet known at generation
    /// time (resolved by [`Index::index`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps this abstract index onto a collection of `len` items.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    /// Chooses one element of the vector uniformly.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select of empty options");
        Select(options).boxed()
    }

    struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each generated case runs the body; failures
/// report the case number and the generated inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($config:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __config.cases && __attempts < __config.cases * 16 {
                __attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!("" $(, stringify!($arg), " = {:?}; ")*),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest `{}` failed at case #{}: {}\n  inputs: {}",
                            stringify!($name),
                            __ran,
                            msg,
                            __inputs
                        );
                    }
                }
            }
        }
    )*};
}

/// Chooses uniformly among the listed strategies (all must yield the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips cases whose inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn fixed_rng() -> crate::test_runner::TestRng {
        crate::test_runner::TestRng::deterministic("vendored-proptest-self-test")
    }

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = fixed_rng();
        let strat = (0u8..64).prop_map(|v| v << 2);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 4, 0);
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = fixed_rng();
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = fixed_rng();
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_surface_works(x in 0u64..100, pair in (any::<bool>(), 0u8..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(pair.1 & 0b11, pair.1);
        }
    }
}
