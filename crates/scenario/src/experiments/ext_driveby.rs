//! X6 — extension: a continuous drive-by survey with real mobility.
//!
//! The Table 2 regenerator scans the city in neighbourhood segments; this
//! experiment does the §3 setup literally: a car carrying the injector
//! drives down a street of houses at constant speed, discovering devices
//! as they come into range, injecting at them while in range, and
//! verifying their ACKs — one continuous simulation, no teleporting.

use crate::spec::ScenarioSpec;
use crate::support::compare;
use polite_wifi_core::AckVerifier;
use polite_wifi_frame::{builder, ControlFrame, Frame, MacAddr};
use polite_wifi_harness::{Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sim::NodeId;
use serde::Serialize;
use std::collections::{BTreeSet, HashSet};

#[derive(Serialize)]
struct DriveByResult {
    houses: usize,
    devices: usize,
    discovered: usize,
    verified: usize,
    drive_seconds: u64,
    speed_mps: f64,
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let houses = 14usize;
    let spacing = 40.0; // metres between houses
    let speed = 12.0; // m/s ≈ 43 km/h
    let street_len = houses as f64 * spacing;
    let drive_seconds = (street_len / speed) as u64 + 10;

    let mut sb = ScenarioBuilder::new()
        .duration_us(drive_seconds * 1_000_000)
        .faults(exp.args().faults);
    // The car: monitor-mode injector moving east along y = 0.
    let car = sb.monitor(MacAddr::FAKE, (-60.0, 0.0));
    sb.retries(car, false);
    sb.velocity(car, (speed, 0.0));

    // Houses along the street, 18 m back from the kerb: an AP plus two
    // clients each, everyone on channel 6 (the car's tune).
    let mut members: Vec<MacAddr> = Vec::new();
    let mut probers: Vec<(NodeId, MacAddr, u64)> = Vec::new();
    for h in 0..houses {
        let x = h as f64 * spacing;
        let ap_mac = MacAddr::new([0x68, 0x02, 0xb8, 0x10, 0, h as u8]);
        sb.station(
            StationConfig::access_point(ap_mac, &format!("House-{h}")),
            (x, 18.0),
        );
        members.push(ap_mac);
        for c in 0..2u8 {
            let mac = MacAddr::new([0xf0, 0x18, 0x98, 0x10, c, h as u8]);
            let id = sb.client(mac, (x + 3.0, 21.0 + c as f64));
            members.push(mac);
            probers.push((id, mac, (h as u64 * 137 + c as u64 * 313) * 1_000));
        }
    }
    let mut scenario = sb.build_with_seed(exp.seed());
    let sim = &mut scenario.sim;

    // Clients probe every ~700 ms throughout.
    for (id, mac, start_us) in &probers {
        let mut t = *start_us;
        let mut seq = 0u16;
        while t < drive_seconds * 1_000_000 {
            sim.inject(t, *id, builder::probe_request(*mac, seq), BitRate::Mbps1);
            seq = seq.wrapping_add(1);
            t += 700_000;
        }
    }
    let member_set: HashSet<MacAddr> = members.iter().copied().collect();

    // Drive: every 250 ms, discover new transmitters from the car's
    // capture and keep injecting at in-range undiscovered/unverified ones.
    // MAC-ordered sets so the injection schedule is deterministic.
    let mut discovered: BTreeSet<MacAddr> = BTreeSet::new();
    let mut verified: BTreeSet<MacAddr> = BTreeSet::new();
    let mut pending_pair: Option<(MacAddr, u64)> = None;
    let mut offset = 0usize;
    let mut now = 0u64;
    while now < drive_seconds * 1_000_000 {
        now += 250_000;
        sim.run_until(now);
        let frames = sim.node(car).capture.frames();
        for cf in &frames[offset..] {
            // Thread 3's temporal pairing, inline.
            match &cf.frame {
                Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE => {
                    if let Some((victim, ts)) = pending_pair.take() {
                        if cf.ts_us.saturating_sub(ts) <= 1_000 {
                            verified.insert(victim);
                        }
                    }
                }
                other => {
                    if other.transmitter() == Some(MacAddr::FAKE) {
                        if let Some(victim) = other.receiver() {
                            pending_pair = Some((victim, cf.ts_us));
                        }
                    } else if let Some(ta) = other.transmitter() {
                        if member_set.contains(&ta) {
                            discovered.insert(ta);
                        }
                    }
                }
            }
        }
        offset = frames.len();
        // Thread 2: keep injecting at discovered-but-unverified targets.
        for (i, mac) in discovered.difference(&verified).enumerate() {
            sim.inject(
                now + 3_000 + i as u64 * 2_000,
                car,
                builder::fake_null_frame(*mac, MacAddr::FAKE),
                BitRate::Mbps1,
            );
        }
    }

    // Cross-check the inline pairing against the library verifier.
    let verified_check: BTreeSet<MacAddr> = AckVerifier::new(MacAddr::FAKE)
        .responding_victims(&sim.node(car).capture)
        .into_iter()
        .collect();
    assert_eq!(verified, verified_check, "pairing implementations disagree");
    let acks_heard = sim
        .node(car)
        .capture
        .frames()
        .iter()
        .filter(
            |cf| matches!(&cf.frame, Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == MacAddr::FAKE),
        )
        .count();
    exp.metrics.record("discovered", discovered.len() as f64);
    exp.metrics.record("verified", verified.len() as f64);
    exp.metrics.record("acks_heard", acks_heard as f64);

    println!(
        "\nstreet: {houses} houses, {} devices; drive: {:.0} m at {speed} m/s ({drive_seconds} s)",
        members.len(),
        street_len
    );
    println!(
        "discovered {} / verified {} devices; {} ACKs heard from the kerb",
        discovered.len(),
        verified.len(),
        acks_heard
    );

    compare(
        "every device passed is discovered and verified",
        "all respond (§3)",
        &format!("{}/{}", verified.len(), members.len()),
    );

    if exp.args().faults.is_clean() {
        assert_eq!(discovered.len(), members.len(), "missed a device");
        assert_eq!(verified.len(), members.len(), "a device failed to verify");
    }
    scenario.observe_activity(car, "power.car");
    let snapshot = scenario.sim.take_obs();
    exp.absorb_obs(snapshot);
    exp.finish_with_status(
        &spec.slug,
        &DriveByResult {
            houses,
            devices: members.len(),
            discovered: discovered.len(),
            verified: verified.len(),
            drive_seconds,
            speed_mps: speed,
        },
    )
}
