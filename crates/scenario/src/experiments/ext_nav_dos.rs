//! X5 — extension: channel-reservation denial of service via automatic
//! CTS.
//!
//! The paper's attacker *minimises* the NAV on its fakes to keep the
//! channel usable for measurement. This experiment flips the knob: forged
//! RTS frames with maximal Duration make the victim answer CTS — and
//! every station honouring virtual carrier sense, including stations
//! that cannot hear the attacker at all, defers for the advertised time.
//! A classic DoS, powered by the same unauthenticated response behaviour.
//! The five attack configurations are independent simulations, fanned
//! over the harness worker pool.

use crate::spec::ScenarioSpec;
use crate::support::{bar, compare};
use polite_wifi_frame::{builder, MacAddr};
use polite_wifi_harness::{Experiment, RunArgs, ScenarioBuilder};
use polite_wifi_phy::rate::BitRate;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct NavDosRow {
    rts_per_second: u32,
    nav_us: u16,
    delivered_per_second: f64,
    throughput_fraction: f64,
}

/// Runs a legitimate pair offering 200 frames/s for 5 s while the
/// attacker fires `rts_pps` forged RTS at the victim with `nav_us`.
fn run_case(
    rts_pps: u32,
    nav_us: u16,
    seed: u64,
    faults: polite_wifi_sim::FaultProfile,
) -> (NavDosRow, polite_wifi_obs::Obs) {
    let a_mac: MacAddr = "02:00:00:00:00:0a".parse().unwrap();
    let b_mac: MacAddr = "02:00:00:00:00:0b".parse().unwrap();

    let seconds = 5u64;
    let mut sb = ScenarioBuilder::new()
        .duration_us(seconds * 1_000_000)
        .faults(faults);
    let a = sb.client(a_mac, (0.0, 0.0));
    let b = sb.client(b_mac, (10.0, 0.0));
    sb.associate(b, a_mac);
    let attacker = sb.client(MacAddr::FAKE, (20.0, 0.0));
    sb.retries(attacker, false);
    let mut scenario = sb.build_with_seed(seed);

    // Legitimate offered load: 200 small frames/s from A to B.
    for i in 0..(200 * seconds) {
        scenario.sim.inject(
            i * 5_000,
            a,
            builder::protected_qos_data(b_mac, a_mac, a_mac, i as u16, 200),
            BitRate::Mbps24,
        );
    }
    // The attack: forged RTS at the victim B with a chosen NAV, kept up
    // slightly past the measurement window (the DoS suppresses delivery
    // *while it runs*; a backlog flush afterwards is not throughput).
    if rts_pps > 0 {
        let gap = 1_000_000 / rts_pps as u64;
        for i in 0..(rts_pps as u64 * (seconds + 1)) {
            scenario.sim.inject(
                i * gap,
                attacker,
                builder::fake_rts(b_mac, MacAddr::FAKE, nav_us),
                BitRate::Mbps1,
            );
        }
    }
    let sim = scenario.run();

    let delivered = sim.node(a).acks_received as f64 / seconds as f64;
    let row = NavDosRow {
        rts_per_second: rts_pps,
        nav_us,
        delivered_per_second: delivered,
        throughput_fraction: delivered / 200.0,
    };
    (row, scenario.sim.take_obs())
}

pub fn run(spec: &ScenarioSpec, args: RunArgs) -> std::io::Result<i32> {
    let mut exp = Experiment::start_with(&spec.name, &spec.paper_ref, args);

    let seed = exp.seed();
    let configs = [
        (0u32, 0u16),
        (10, 5_000),
        (30, 30_000),
        (40, 32_767),
        (60, 32_767),
    ];
    let faults = exp.args().faults;
    let results = exp.runner().run_indexed(configs.len(), |i| {
        run_case(configs[i].0, configs[i].1, seed, faults)
    });
    let mut rows = Vec::with_capacity(results.len());
    for (row, obs) in results {
        exp.absorb_obs(obs);
        rows.push(row);
    }

    println!(
        "\nlegitimate pair without attack: {:.0} frames/s delivered\n",
        rows[0].delivered_per_second
    );
    println!(
        "{:>8} {:>9} {:>13} {:>9}  throughput",
        "RTS/s", "NAV µs", "delivered/s", "fraction"
    );
    for row in &rows[1..] {
        println!(
            "{:>8} {:>9} {:>13.0} {:>8.0}%  {}",
            row.rts_per_second,
            row.nav_us,
            row.delivered_per_second,
            row.throughput_fraction * 100.0,
            bar(row.throughput_fraction, 1.0, 30)
        );
    }
    for row in &rows {
        exp.metrics
            .record("throughput_fraction", row.throughput_fraction);
    }

    println!();
    compare(
        "40 RTS/s with max NAV (NAV x rate > 1) strangles the channel",
        "-",
        &format!(
            "{:.0}% of baseline throughput",
            rows[3].throughput_fraction * 100.0
        ),
    );
    compare(
        "below the NAV x rate = 1 threshold the channel survives",
        "-",
        &format!(
            "{:.0}% at 30 RTS/s x 30 ms",
            rows[2].throughput_fraction * 100.0
        ),
    );
    compare(
        "attack bandwidth",
        "negligible",
        "≈0.7% airtime of forged 20-byte control frames",
    );

    if faults.is_clean() {
        assert!(rows[0].throughput_fraction > 0.95, "{rows:?}");
        assert!(
            rows[3].throughput_fraction < 0.15,
            "max-NAV attack left {}",
            rows[3].throughput_fraction
        );
        // More aggressive ≤ less throughput, monotonically.
        assert!(rows[4].throughput_fraction <= rows[3].throughput_fraction + 0.05);
    }
    exp.finish_with_status(&spec.slug, &rows)
}
