//! Single-device WiFi sensing (paper §4.3).
//!
//! One modified device — an IoT hub — round-robins fake frames across
//! its *unmodified* neighbours and senses motion from the ACK CSI of each.
//! The contrast with classical two-device sensing deployments is the
//! point: software changes on exactly one box.

use crate::injector::InjectionPlan;
use polite_wifi_frame::{builder, ControlFrame, Frame, MacAddr};
use polite_wifi_mac::StationConfig;
use polite_wifi_phy::csi::CsiChannel;
use polite_wifi_phy::rate::BitRate;
use polite_wifi_sensing::segment::{segment, Segment, SegmenterConfig};
use polite_wifi_sensing::{filter, CsiSeries, MotionScript};
use polite_wifi_sim::{FaultProfile, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Configuration of the sensing hub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingHub {
    /// Fake-frame rate aimed at *each* target (the paper cites 100–1000
    /// packets/s as the sensing requirement).
    pub rate_pps_per_target: u32,
    /// Subcarrier to sense on.
    pub subcarrier: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Channel/device fault profile the scenario runs under.
    pub faults: FaultProfile,
}

impl Default for SensingHub {
    fn default() -> Self {
        SensingHub {
            rate_pps_per_target: 150,
            subcarrier: 17,
            seed: 7,
            faults: FaultProfile::Clean,
        }
    }
}

/// What the hub sensed at one target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TargetSensing {
    /// The unmodified neighbour polled.
    pub target: MacAddr,
    /// CSI samples collected.
    pub samples: usize,
    /// Detected motion windows, in µs of simulation time.
    pub motion_windows_us: Vec<(u64, u64)>,
}

/// The hub's full report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingReport {
    /// Devices whose software was modified (always 1 — the hub).
    pub devices_modified: usize,
    /// Devices participating in sensing (hub + unmodified targets).
    pub devices_participating: usize,
    /// Per-target results.
    pub targets: Vec<TargetSensing>,
}

impl SensingHub {
    /// Runs the sensing scenario: `scripts[i]` is the ground-truth motion
    /// near target `i`. Returns detected motion windows per target.
    pub fn run(&self, scripts: &[MotionScript]) -> SensingReport {
        let hub_mac: MacAddr = "18:b4:30:00:00:01".parse().unwrap(); // an IoT hub
        let duration_us = scripts.iter().map(|s| s.duration_us()).max().unwrap_or(0);

        let mut sim = Simulator::new(SimConfig::default(), self.seed);
        let hub = sim.add_node(StationConfig::client(hub_mac), (0.0, 0.0));
        sim.set_monitor(hub, true);
        sim.install_faults(&self.faults.plan());

        let mut targets = Vec::new();
        for i in 0..scripts.len() {
            let mac = MacAddr::new([0xf2, 0x6e, 0x0b, 0x00, 0x10, i as u8]);
            let angle = i as f64 * 2.0 * std::f64::consts::PI / scripts.len().max(1) as f64;
            let pos = (6.0 * angle.cos(), 6.0 * angle.sin());
            sim.add_node(StationConfig::client(mac), pos);
            targets.push(mac);
        }

        // Round-robin injection: each target gets rate_pps_per_target,
        // interleaved so the hub's radio never bursts one target.
        for (i, &target) in targets.iter().enumerate() {
            let plan = InjectionPlan {
                victim: target,
                forged_ta: hub_mac,
                kind: crate::injector::InjectionKind::NullData,
                rate_pps: self.rate_pps_per_target,
                start_us: (i as u64) * 1_000_000
                    / (self.rate_pps_per_target as u64)
                    / (scripts.len().max(1) as u64),
                duration_us,
                bitrate: BitRate::Mbps1,
            };
            sim.set_retries(hub, false);
            for &t in &plan.schedule() {
                sim.inject(
                    t,
                    hub,
                    builder::fake_null_frame(target, hub_mac),
                    plan.bitrate,
                );
            }
        }
        sim.run_until(duration_us + 100_000);

        // Attribute ACKs to targets temporally: the hub knows what it
        // injected last (ACKs carry no source address).
        let mut per_target_series: Vec<CsiSeries> =
            (0..targets.len()).map(|_| CsiSeries::new()).collect();
        let mut channels: Vec<CsiChannel> = (0..targets.len())
            .map(|i| CsiChannel::new(self.seed ^ (i as u64 + 1)))
            .collect();
        let mut last_target: Option<usize> = None;
        for cf in sim.global_capture().frames() {
            match &cf.frame {
                Frame::Data(d) if d.addr2 == hub_mac => {
                    last_target = targets.iter().position(|&t| t == d.addr1);
                }
                Frame::Ctrl(ControlFrame::Ack { ra }) if *ra == hub_mac => {
                    if let Some(i) = last_target.take() {
                        let intensity = scripts[i].intensity_at(cf.ts_us);
                        let snap = channels[i].sample(intensity);
                        per_target_series[i].push(cf.ts_us, snap);
                    }
                }
                _ => {}
            }
        }

        let mut results = Vec::new();
        for (i, series) in per_target_series.iter().enumerate() {
            let amplitudes = filter::condition(&series.subcarrier_amplitudes(self.subcarrier));
            let segs = segment(&amplitudes, &SegmenterConfig::default());
            let motion_windows_us = segs
                .iter()
                .map(|&Segment { start, end }| {
                    (
                        series.times_us[start.min(series.len() - 1)],
                        series.times_us[(end - 1).min(series.len() - 1)],
                    )
                })
                .collect();
            results.push(TargetSensing {
                target: targets[i],
                samples: series.len(),
                motion_windows_us,
            });
        }

        SensingReport {
            devices_modified: 1,
            devices_participating: 1 + targets.len(),
            targets: results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_senses_motion_at_the_scripted_times() {
        // Figure 5's caption: movements near the target at t≈9 s and
        // t≈32 s create sharp CSI changes. Script two walk-bys.
        let script = {
            let mut s = MotionScript::walk_by(40_000_000, 9_000_000, 11_000_000);
            // Add a second event at 32 s.
            s.phases.pop(); // drop trailing idle
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 11_000_000,
                end_us: 32_000_000,
                label: "idle".into(),
                intensity: 0.0,
            });
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 32_000_000,
                end_us: 34_000_000,
                label: "walk".into(),
                intensity: 0.8,
            });
            s.phases.push(polite_wifi_sensing::Phase {
                start_us: 34_000_000,
                end_us: 40_000_000,
                label: "idle".into(),
                intensity: 0.0,
            });
            s
        };
        let report = SensingHub::default().run(&[script]);
        assert_eq!(report.devices_modified, 1);
        assert_eq!(report.devices_participating, 2);
        let t = &report.targets[0];
        assert!(t.samples > 4_000, "only {} samples", t.samples);
        assert_eq!(
            t.motion_windows_us.len(),
            2,
            "windows: {:?}",
            t.motion_windows_us
        );
        let (s1, e1) = t.motion_windows_us[0];
        let (s2, e2) = t.motion_windows_us[1];
        assert!(s1 < 10_000_000 && e1 > 9_000_000, "first window {s1}..{e1}");
        assert!(
            s2 < 33_000_000 && e2 > 32_000_000,
            "second window {s2}..{e2}"
        );
    }

    #[test]
    fn multiple_unmodified_targets_sensed_concurrently() {
        let scripts = vec![
            MotionScript::walk_by(20_000_000, 5_000_000, 7_000_000),
            MotionScript::idle(20_000_000),
            MotionScript::walk_by(20_000_000, 12_000_000, 14_000_000),
        ];
        let report = SensingHub::default().run(&scripts);
        assert_eq!(report.devices_participating, 4);
        assert_eq!(report.targets.len(), 3);
        // Target 0 and 2 saw motion; target 1 did not.
        assert!(!report.targets[0].motion_windows_us.is_empty());
        assert!(report.targets[1].motion_windows_us.is_empty());
        assert!(!report.targets[2].motion_windows_us.is_empty());
        // And all were sensed without modifying them.
        assert_eq!(report.devices_modified, 1);
    }
}
