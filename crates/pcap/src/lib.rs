//! Classic pcap file support for 802.11 captures.
//!
//! The paper's evidence is Wireshark screenshots (Figures 2 and 3). To make
//! our reproduction inspectable with the same tooling, this crate writes
//! and reads the classic pcap container with the two relevant link types:
//!
//! * [`LinkType::Ieee80211`] (105) — bare 802.11 frames, and
//! * [`LinkType::Ieee80211Radiotap`] (127) — frames prefixed with a
//!   radiotap metadata header.
//!
//! [`trace`] renders captures as the Source/Destination/Info rows the
//! paper's figures show; [`capture::Capture`] is the in-memory recording
//! the simulator's monitor taps fill.
//!
//! ```
//! use polite_wifi_pcap::{capture::Capture, LinkType};
//! use polite_wifi_frame::{builder, MacAddr};
//!
//! let victim: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
//! let mut cap = Capture::new();
//! cap.record_frame(1_000_000, &builder::fake_null_frame(victim, MacAddr::FAKE));
//! cap.record_frame(1_000_044, &builder::ack(MacAddr::FAKE));
//!
//! let bytes = cap.to_pcap_bytes(LinkType::Ieee80211);
//! let packets = polite_wifi_pcap::read_pcap(&bytes).unwrap();
//! assert_eq!(packets.records.len(), 2);
//! ```

pub mod capture;
pub mod format;
pub mod pcapng;
pub mod trace;

pub use format::{read_pcap, LinkType, PcapError, PcapFile, PcapRecord, PcapWriter};
pub use pcapng::{read_pcapng, PcapNgWriter, PcapNgWriterInfo};
