//! The Polite WiFi toolkit — the paper's contribution as a library.
//!
//! Everything an experimenter needs to reproduce the paper sits behind
//! this crate:
//!
//! * [`injector`] — the fake-frame injector (the $12 RTL8812AU dongle's
//!   role): unicast null frames or RTS at a configurable rate,
//! * [`verifier`] — pairs injected fakes with the ACKs they elicit
//!   (ACKs carry no transmitter address, so pairing is temporal, exactly
//!   as the paper's third Scapy thread did),
//! * [`scanner`] — the three-stage wardriving pipeline of Section 3
//!   (discover / inject / verify, the paper's three threads as inline
//!   state), sharded across the experiment harness's worker pool with
//!   per-segment derived seeds,
//! * [`drain`] — the battery-drain attack of Section 4.2,
//! * [`keystroke`] — the CSI keystroke/activity sniffer of Section 4.1,
//! * [`sensing_hub`] — the single-device sensing opportunity of
//!   Section 4.3, and
//! * [`analysis`] — the SIFS-vs-decryption feasibility argument of
//!   Section 2.2 in executable form,
//! * [`attack`] — the [`attack::Attack`] /
//!   [`attack::Probe`] / [`attack::Assertion`] trait
//!   layer that declarative scenarios compose attacks and pass/fail
//!   checks from,
//!
//! and two extensions following the paper's future-work pointers:
//!
//! * [`vitals`] — breathing-rate recovery from elicited ACK CSI, and
//! * [`ranging`] — RSSI-based distance estimation to an unassociated
//!   victim (the Wi-Peep direction).

pub mod analysis;
pub mod attack;
pub mod drain;
pub mod injector;
pub mod keystroke;
pub mod ranging;
pub mod retry;
pub mod scanner;
pub mod sensing_hub;
pub mod verifier;
pub mod vitals;

pub use attack::{
    check_all, Assertion, AssociationProbe, Attack, AttackCtx, BlockAckParalysis, CmpOp,
    DeauthFlood, MetricAssertion, NavRtsFlood, Probe, StatKind, StationStatProbe,
};
pub use drain::{BatteryDrainAttack, DrainMeasurement};
pub use injector::{FakeFrameInjector, InjectionKind, InjectionPlan};
pub use keystroke::{KeystrokeAttack, KeystrokeAttackResult};
pub use ranging::{estimate_range, RangeEstimate};
pub use retry::RetryPolicy;
pub use scanner::{CityReport, CityWardrive, ScanReport, WardriveScanner};
pub use sensing_hub::{BatchHubReport, BatchSensingHub, SensingHub, SensingReport};
pub use verifier::{AckVerifier, VerifiedExchange};
pub use vitals::{VitalSignsAttack, VitalSignsResult};
