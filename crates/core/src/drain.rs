//! The battery-drain attack (paper §4.2, Figure 6).
//!
//! An ESP8266-class power-save victim associates with an AP and dozes.
//! The attacker bombards it with fake frames: every received fake resets
//! the victim's doze timer and costs RX + ACK-TX energy. Above ~10
//! packets/s the radio never sleeps again.

use crate::injector::{FakeFrameInjector, InjectionKind, InjectionPlan};
use polite_wifi_frame::MacAddr;
use polite_wifi_mac::{Behavior, StationConfig};
use polite_wifi_phy::rate::BitRate;
use polite_wifi_power::{Battery, DrainProjection, PowerProfile, StateDurations};
use polite_wifi_sim::{FaultProfile, SimConfig, Simulator};
use serde::{Deserialize, Serialize};

/// Configuration of one drain measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatteryDrainAttack {
    /// Fake-frame rate in packets per second (0 = no attack).
    pub rate_pps: u32,
    /// Frame kind: null data (ACK drain) or RTS (CTS drain — works even
    /// against a hypothetical validating MAC, per §2.2).
    pub kind: InjectionKind,
    /// Warm-up before measurement starts, µs (lets transients settle).
    pub warmup_us: u64,
    /// Measurement duration, µs.
    pub measure_us: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Channel/device fault profile the scenario runs under.
    pub faults: FaultProfile,
}

impl Default for BatteryDrainAttack {
    fn default() -> Self {
        BatteryDrainAttack {
            rate_pps: 900,
            kind: InjectionKind::NullData,
            warmup_us: 3_000_000,
            measure_us: 10_000_000,
            seed: 42,
            faults: FaultProfile::Clean,
        }
    }
}

/// The outcome of one drain measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainMeasurement {
    /// Attack rate.
    pub rate_pps: u32,
    /// Victim radio-state durations over the measurement window.
    pub durations: StateDurations,
    /// Average power under the ESP8266 profile, mW.
    pub average_power_mw: f64,
    /// Fraction of the window the victim slept.
    pub sleep_fraction: f64,
    /// ACKs the victim transmitted during the whole run.
    pub acks_sent: u64,
}

impl BatteryDrainAttack {
    /// Runs the attack scenario and measures the victim.
    pub fn run(&self) -> DrainMeasurement {
        let victim_mac: MacAddr = "24:0a:c4:00:00:01".parse().unwrap(); // Espressif OUI
        let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();

        let mut sim = Simulator::new(SimConfig::default(), self.seed);
        let ap = sim.add_node(StationConfig::access_point(ap_mac, "HomeNet"), (0.0, 0.0));
        let mut victim_cfg = StationConfig::client(victim_mac);
        victim_cfg.behavior = Behavior::iot_power_save();
        let victim = sim.add_node(victim_cfg, (3.0, 0.0));
        sim.station_mut(victim).associate(ap_mac);
        sim.station_mut(ap).associate(victim_mac);

        let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (8.0, 0.0));
        sim.install_faults(&self.faults.plan());
        let injector = FakeFrameInjector::new(attacker);
        let plan = InjectionPlan {
            victim: victim_mac,
            forged_ta: MacAddr::FAKE,
            kind: self.kind,
            rate_pps: self.rate_pps,
            start_us: 0,
            duration_us: self.warmup_us + self.measure_us,
            bitrate: BitRate::Mbps1,
        };
        injector.execute(&mut sim, &plan);

        sim.run_until(self.warmup_us);
        let before = sim.node(victim).ledger.snapshot(sim.now_us());
        sim.run_until(self.warmup_us + self.measure_us);
        let after = sim.node(victim).ledger.snapshot(sim.now_us());

        let durations = StateDurations {
            sleep_us: after.sleep_us - before.sleep_us,
            idle_us: after.idle_us - before.idle_us,
            rx_us: after.rx_us - before.rx_us,
            tx_us: after.tx_us - before.tx_us,
        };
        let profile = PowerProfile::esp8266();
        DrainMeasurement {
            rate_pps: self.rate_pps,
            durations,
            average_power_mw: profile.average_power_mw(&durations),
            sleep_fraction: durations.sleep_us as f64 / durations.total_us().max(1) as f64,
            acks_sent: sim.station(victim).stats.acks_sent + sim.station(victim).stats.cts_sent,
        }
    }

    /// Runs the Figure 6 sweep over a list of rates.
    pub fn sweep(rates: &[u32], seed: u64) -> Vec<DrainMeasurement> {
        Self::sweep_with_faults(rates, seed, FaultProfile::Clean)
    }

    /// [`sweep`](Self::sweep) under a chaos profile.
    pub fn sweep_with_faults(
        rates: &[u32],
        seed: u64,
        faults: FaultProfile,
    ) -> Vec<DrainMeasurement> {
        rates
            .iter()
            .map(|&rate_pps| {
                BatteryDrainAttack {
                    rate_pps,
                    seed,
                    faults,
                    ..BatteryDrainAttack::default()
                }
                .run()
            })
            .collect()
    }

    /// Projects the §4.2 battery-life numbers for a measured power draw.
    pub fn project_batteries(measurement: &DrainMeasurement) -> Vec<DrainProjection> {
        vec![
            Battery::logitech_circle2().project(measurement.average_power_mw),
            Battery::blink_xt2().project(measurement.average_power_mw),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate_pps: u32) -> DrainMeasurement {
        BatteryDrainAttack {
            rate_pps,
            warmup_us: 2_000_000,
            measure_us: 5_000_000,
            seed: 1,
            ..BatteryDrainAttack::default()
        }
        .run()
    }

    #[test]
    fn baseline_is_about_10mw() {
        let m = quick(0);
        assert!(
            (5.0..15.0).contains(&m.average_power_mw),
            "baseline {} mW",
            m.average_power_mw
        );
        assert!(m.sleep_fraction > 0.9);
        assert_eq!(m.acks_sent, 0);
    }

    #[test]
    fn fifty_pps_pins_radio_awake() {
        let m = quick(50);
        assert!(
            m.average_power_mw > 200.0,
            "50 pps gives {} mW",
            m.average_power_mw
        );
        assert!(m.sleep_fraction < 0.05, "slept {}", m.sleep_fraction);
        assert!(m.acks_sent > 200);
    }

    #[test]
    fn power_grows_with_rate_once_awake() {
        let low = quick(50);
        let high = quick(600);
        assert!(
            high.average_power_mw > low.average_power_mw + 30.0,
            "{} vs {}",
            high.average_power_mw,
            low.average_power_mw
        );
    }

    #[test]
    fn low_rate_mostly_misses_the_dozing_victim() {
        let m = quick(2);
        assert!(
            m.average_power_mw < 60.0,
            "2 pps gives {} mW",
            m.average_power_mw
        );
        assert!(m.sleep_fraction > 0.6, "slept {}", m.sleep_fraction);
    }

    #[test]
    fn rts_drain_works_like_null_drain() {
        // §2.2's fallback: CTS elicitation drains the battery the same
        // way, and would survive even a validating MAC.
        let m = BatteryDrainAttack {
            rate_pps: 50,
            kind: InjectionKind::Rts,
            warmup_us: 2_000_000,
            measure_us: 5_000_000,
            seed: 1,
            faults: FaultProfile::Clean,
        }
        .run();
        assert!(
            m.average_power_mw > 200.0,
            "RTS drain gives {} mW",
            m.average_power_mw
        );
        assert!(m.sleep_fraction < 0.05);
        assert!(m.acks_sent > 200, "CTS count {}", m.acks_sent);
    }

    #[test]
    fn congested_channel_weakens_but_does_not_stop_the_drain() {
        let clean = quick(50);
        let faulty = BatteryDrainAttack {
            rate_pps: 50,
            warmup_us: 2_000_000,
            measure_us: 5_000_000,
            seed: 1,
            faults: FaultProfile::Congested,
            ..BatteryDrainAttack::default()
        }
        .run();
        // Burst loss eats some fakes and some ACKs, so the victim both
        // sleeps a little more and ACKs less — but the attack still
        // lands (the paper's point survives a bad channel).
        assert!(faulty.acks_sent < clean.acks_sent, "{faulty:?}");
        assert!(faulty.acks_sent > clean.acks_sent / 4, "{faulty:?}");
        // And the injected faults never leak into a clean rerun.
        assert_eq!(quick(50), clean);
    }

    #[test]
    fn battery_projection_uses_measured_power() {
        let m = quick(50);
        let projections = BatteryDrainAttack::project_batteries(&m);
        assert_eq!(projections.len(), 2);
        let circle2 = &projections[0];
        assert!((circle2.battery.capacity_mwh - 2400.0).abs() < 1e-9);
        assert!((circle2.attacked_life_hours - 2400.0 / m.average_power_mw).abs() < 1e-9);
    }
}
