//! Integration tests for the `politewifi` CLI binary (spawned as a real
//! process via the path Cargo exports for bin targets).

use std::process::Command;

fn politewifi(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_politewifi"))
        .args(args)
        .output()
        .expect("spawn politewifi")
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = politewifi(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = politewifi(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn quickstart_reports_the_ack() {
    let out = politewifi(&["quickstart", "--seed", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Acknowledgement"), "{stdout}");
    assert!(stdout.contains("victim ACKs sent: 1"), "{stdout}");
}

#[test]
fn quickstart_pcap_round_trips_through_analyze() {
    let dir = std::env::temp_dir();
    for ext in ["pcap", "pcapng"] {
        let path = dir.join(format!("politewifi_cli_test.{ext}"));
        let path_str = path.to_str().unwrap();
        let out = politewifi(&["quickstart", "--out", path_str]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );

        let out = politewifi(&["analyze", path_str]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("verified fake→ACK exchanges for aa:bb:bb:bb:bb:bb: 1"),
            "{ext}: {stdout}"
        );
        assert!(stdout.contains("responding victim: f2:6e:0b:11:22:33"));
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn analyze_rejects_garbage_files() {
    let path = std::env::temp_dir().join("politewifi_cli_garbage.bin");
    std::fs::write(&path, b"not a capture at all").unwrap();
    let out = politewifi(&["analyze", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a pcap"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sifs_command_prints_the_argument() {
    let out = politewifi(&["sifs"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SIFS = 10"));
    assert!(stdout.contains("MISSES"));
    assert!(stdout.contains("70x"));
}

#[test]
fn drain_command_reports_power() {
    let out = politewifi(&["drain", "--rate", "50", "--seconds", "3"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mW average"), "{stdout}");
    assert!(stdout.contains("Logitech Circle 2"));
}

#[test]
fn bad_flag_value_is_an_error() {
    let out = politewifi(&["drain", "--rate", "lots"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rate expects a number"));
}
