//! The synthetic city: a device population whose vendor marginals match
//! Table 2 exactly.

use crate::oui::OuiRegistry;
use polite_wifi_frame::MacAddr;
use polite_wifi_mac::{Behavior, Role};
use polite_wifi_phy::band::Band;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Table 2, left half: the top-20 client-device vendors and their counts.
pub const TABLE2_CLIENTS: &[(&str, u32)] = &[
    ("Apple", 143),
    ("Google", 102),
    ("Intel", 66),
    ("Hitron", 65),
    ("HP", 63),
    ("Samsung", 56),
    ("Espressif", 47),
    ("Hon Hai", 46),
    ("Amazon", 41),
    ("Sagemcom", 38),
    ("Liteon", 33),
    ("AzureWave", 30),
    ("Sonos", 30),
    ("Nest Labs", 27),
    ("Murata", 24),
    ("Belkin", 20),
    ("TP-LINK", 20),
    ("Cisco", 16),
    ("ecobee", 13),
    ("Microsoft", 13),
];

/// Table 2, right half: the top-20 AP vendors and their counts.
pub const TABLE2_APS: &[(&str, u32)] = &[
    ("Hitron", 723),
    ("Sagemcom", 601),
    ("Technicolor", 410),
    ("eero", 195),
    ("Extreme N.", 188),
    ("Cisco", 156),
    ("HP", 104),
    ("TP-LINK", 101),
    ("Google", 80),
    ("D-Link", 75),
    ("NETGEAR", 69),
    ("ASUSTek", 51),
    ("Aruba", 46),
    ("SmartRG", 44),
    ("Ubiquiti N.", 35),
    ("Zebra", 35),
    ("Pegatron", 28),
    ("Belkin", 25),
    ("Mitsumi", 25),
    ("Apple", 19),
];

/// Paper totals: 1,523 clients from 147 vendors; 3,805 APs from 94
/// vendors; 186 distinct vendors overall; 5,328 devices.
pub const TOTAL_CLIENTS: u32 = 1523;
/// See [`TOTAL_CLIENTS`].
pub const TOTAL_APS: u32 = 3805;
/// Distinct client vendors.
pub const CLIENT_VENDORS: u32 = 147;
/// Distinct AP vendors.
pub const AP_VENDORS: u32 = 94;
/// Distinct vendors overall.
pub const TOTAL_VENDORS: u32 = 186;

/// One device in the city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// The device's MAC address (OUI attributes it to its vendor).
    pub mac: MacAddr,
    /// Vendor name.
    pub vendor: String,
    /// Client or AP.
    pub role: Role,
    /// Operating band.
    pub band: Band,
    /// Channel within the band.
    pub channel: u8,
    /// MAC behaviour.
    pub behavior: Behavior,
    /// SSID (APs only; empty for clients).
    pub ssid: String,
}

/// The synthetic city population.
#[derive(Debug, Clone)]
pub struct CityPopulation {
    /// All devices: clients then APs.
    pub devices: Vec<DeviceSpec>,
    /// OUI registry covering every vendor in the population.
    pub registry: OuiRegistry,
}

impl CityPopulation {
    /// Generates the full Table 2 population, deterministically from a
    /// seed. The per-vendor counts are *exact*; behaviours, channels and
    /// bands are sampled.
    pub fn table2(seed: u64) -> CityPopulation {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut registry = OuiRegistry::with_known_vendors();
        let mut devices = Vec::with_capacity((TOTAL_CLIENTS + TOTAL_APS) as usize);
        let mut next_suffix: u32 = 1;

        // Long-tail vendors: 47 are shared between the client and AP
        // sides (so distinct totals land on 147 + 94 - 8 named-overlap -
        // 47 synthetic-overlap = 186), the rest are side-exclusive.
        let shared: Vec<String> = (1..=47).map(|i| format!("Shared-{i:03}")).collect();
        let client_only: Vec<String> = (48..=127).map(|i| format!("ClientVendor-{i:03}")).collect();
        let ap_only: Vec<String> = (48..=74).map(|i| format!("ApVendor-{i:03}")).collect();
        let mut synth_oui_counter: u32 = 0;
        let mut synth_oui = |registry: &mut OuiRegistry, vendor: &str| {
            if registry.oui_of(vendor).is_none() {
                synth_oui_counter += 1;
                // Locally-administered prefix keeps synthetic OUIs out of
                // real vendors' space.
                let oui = [
                    0x02,
                    (synth_oui_counter >> 8) as u8,
                    synth_oui_counter as u8,
                ];
                registry.register(oui, vendor);
            }
        };

        // --- Clients ---
        let named_client_total: u32 = TABLE2_CLIENTS.iter().map(|(_, c)| c).sum();
        let other_client_total = TOTAL_CLIENTS - named_client_total;
        let client_tail: Vec<&String> = shared.iter().chain(client_only.iter()).collect();
        assert_eq!(client_tail.len() as u32, CLIENT_VENDORS - 20);
        let mut client_counts: Vec<(String, u32)> = TABLE2_CLIENTS
            .iter()
            .map(|(v, c)| (v.to_string(), *c))
            .collect();
        client_counts.extend(spread(other_client_total, &client_tail));

        for (vendor, count) in &client_counts {
            synth_oui(&mut registry, vendor);
            let oui = registry.oui_of(vendor).expect("registered");
            for _ in 0..*count {
                let mac = MacAddr::from_oui(oui, next_suffix);
                next_suffix += 1;
                devices.push(client_spec(vendor, mac, &mut rng));
            }
        }

        // --- APs ---
        let named_ap_total: u32 = TABLE2_APS.iter().map(|(_, c)| c).sum();
        let other_ap_total = TOTAL_APS - named_ap_total;
        let ap_tail: Vec<&String> = shared.iter().chain(ap_only.iter()).collect();
        assert_eq!(ap_tail.len() as u32, AP_VENDORS - 20);
        let mut ap_counts: Vec<(String, u32)> = TABLE2_APS
            .iter()
            .map(|(v, c)| (v.to_string(), *c))
            .collect();
        ap_counts.extend(spread(other_ap_total, &ap_tail));

        for (vendor, count) in &ap_counts {
            synth_oui(&mut registry, vendor);
            let oui = registry.oui_of(vendor).expect("registered");
            for i in 0..*count {
                let mac = MacAddr::from_oui(oui, next_suffix);
                next_suffix += 1;
                devices.push(ap_spec(vendor, mac, i, &mut rng));
            }
        }

        CityPopulation { devices, registry }
    }

    /// Client devices only.
    pub fn clients(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.devices.iter().filter(|d| d.role == Role::Client)
    }

    /// Access points only.
    pub fn aps(&self) -> impl Iterator<Item = &DeviceSpec> {
        self.devices.iter().filter(|d| d.role == Role::AccessPoint)
    }

    /// Vendor → device count for one role, sorted descending by count
    /// then name (Table 2's presentation order).
    pub fn vendor_counts(&self, role: Role) -> Vec<(String, u32)> {
        let mut map: HashMap<&str, u32> = HashMap::new();
        for d in self.devices.iter().filter(|d| d.role == role) {
            *map.entry(d.vendor.as_str()).or_default() += 1;
        }
        let mut counts: Vec<(String, u32)> =
            map.into_iter().map(|(v, c)| (v.to_string(), c)).collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        counts
    }

    /// Distinct vendors across the whole population.
    pub fn distinct_vendor_count(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.devices.iter().map(|d| d.vendor.as_str()).collect();
        set.len()
    }

    /// Generates an `n`-device synthetic city for the scale benchmarks —
    /// the population the 100k/1M wardrive drives through.
    ///
    /// Unlike [`table2`](Self::table2), which pins the paper's exact
    /// 5,328-device vendor marginals, this generator trades census
    /// fidelity for volume: every 10th-block of devices is 30% clients /
    /// 70% APs (the paper's city skewed the same way), vendors cycle
    /// through the Table 2 top-20 lists, every 20th client is an IoT
    /// power-save device, and APs are quiet (no deauth reflex) so the
    /// event load is dominated by beacons, probes and the attacker's
    /// fakes. MAC addresses stay globally unique via one suffix counter,
    /// so `n` may go up to 2^24 − 1 (16.7M) devices.
    ///
    /// Bands and channels are sampled from `seed` with the same
    /// marginals as the census generator, which is what spreads the city
    /// across co-channel interference cells.
    pub fn synthetic_city(n: usize, seed: u64) -> CityPopulation {
        assert!(n < (1 << 24), "suffix counter is 24-bit");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x43495459); // "CITY"
        let registry = OuiRegistry::with_known_vendors();
        let client_ouis: Vec<([u8; 3], &str)> = TABLE2_CLIENTS
            .iter()
            .map(|(v, _)| (registry.oui_of(v).expect("known vendor"), *v))
            .collect();
        let ap_ouis: Vec<([u8; 3], &str)> = TABLE2_APS
            .iter()
            .map(|(v, _)| (registry.oui_of(v).expect("known vendor"), *v))
            .collect();

        let mut devices = Vec::with_capacity(n);
        let mut clients = 0usize;
        let mut aps = 0usize;
        for i in 0..n {
            let suffix = (i + 1) as u32;
            if i % 10 < 3 {
                let (oui, vendor) = client_ouis[clients % client_ouis.len()];
                let mac = MacAddr::from_oui(oui, suffix);
                let mut spec = client_spec(vendor, mac, &mut rng);
                // Behavior is fixed by position, not vendor: exactly every
                // 20th client dozes, so the power-save share stays at 5%
                // however the vendor cycle lines up with IOT_VENDORS.
                spec.behavior = if clients % 20 == 0 {
                    Behavior::iot_power_save()
                } else {
                    Behavior::client()
                };
                clients += 1;
                devices.push(spec);
            } else {
                let (oui, vendor) = ap_ouis[aps % ap_ouis.len()];
                let mac = MacAddr::from_oui(oui, suffix);
                let mut spec = ap_spec(vendor, mac, aps as u32, &mut rng);
                spec.behavior = Behavior::quiet_ap();
                aps += 1;
                devices.push(spec);
            }
        }

        CityPopulation { devices, registry }
    }

    /// Derives a population where a `fraction` of phone-vendor clients
    /// use locally-administered *randomised* MAC addresses — the privacy
    /// feature modern mobile OSes apply to probe requests and
    /// unassociated traffic. Randomised MACs carry no registered OUI, so
    /// a survey attributes those devices to "Unknown"; the paper's 2020
    /// counts predate widespread randomisation, which this knob lets you
    /// study (it changes *attribution*, never the ACK behaviour).
    pub fn with_randomized_client_macs(mut self, fraction: f64, seed: u64) -> CityPopulation {
        const PHONE_VENDORS: &[&str] = &["Apple", "Google", "Samsung", "Microsoft"];
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x52414e44); // "RAND"
        let mut counter: u32 = 0;
        for d in &mut self.devices {
            if d.role == Role::Client
                && PHONE_VENDORS.contains(&d.vendor.as_str())
                && rng.gen_bool(fraction.clamp(0.0, 1.0))
            {
                counter += 1;
                // 0x06 prefix: locally administered, unicast, and outside
                // the 0x02 space the synthetic long-tail OUIs live in.
                d.mac = MacAddr::new([
                    0x06,
                    rng.gen(),
                    rng.gen(),
                    (counter >> 16) as u8,
                    (counter >> 8) as u8,
                    counter as u8,
                ]);
            }
        }
        self
    }
}

/// Distributes `total` devices across `vendors` as evenly as possible
/// (earlier vendors absorb the remainder), guaranteeing every vendor gets
/// at least one device.
fn spread(total: u32, vendors: &[&String]) -> Vec<(String, u32)> {
    let n = vendors.len() as u32;
    assert!(total >= n, "not enough devices to give each vendor one");
    let base = total / n;
    let extra = total % n;
    vendors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let c = base + u32::from((i as u32) < extra);
            ((*v).clone(), c)
        })
        .collect()
}

/// IoT vendors whose clients run battery power save.
const IOT_VENDORS: &[&str] = &[
    "Espressif",
    "ecobee",
    "Nest Labs",
    "Amazon",
    "Sonos",
    "Belkin",
];

fn client_spec(vendor: &str, mac: MacAddr, rng: &mut ChaCha8Rng) -> DeviceSpec {
    let behavior = if IOT_VENDORS.contains(&vendor) {
        Behavior::iot_power_save()
    } else {
        Behavior::client()
    };
    let band = if rng.gen_bool(0.6) {
        Band::Ghz2
    } else {
        Band::Ghz5
    };
    DeviceSpec {
        mac,
        vendor: vendor.to_string(),
        role: Role::Client,
        band,
        channel: band.default_channel(),
        behavior,
        ssid: String::new(),
    }
}

fn ap_spec(vendor: &str, mac: MacAddr, index: u32, rng: &mut ChaCha8Rng) -> DeviceSpec {
    // The paper observed *some* APs deauth on fakes; give ~20% that
    // reflex, and ~10% 802.11w (PMF). Neither stops the ACK.
    let mut behavior = if rng.gen_bool(0.2) {
        Behavior::deauthing_ap()
    } else {
        Behavior::quiet_ap()
    };
    if rng.gen_bool(0.1) {
        behavior.pmf = true;
    }
    let band = if rng.gen_bool(0.5) {
        Band::Ghz2
    } else {
        Band::Ghz5
    };
    let channel = match band {
        Band::Ghz2 => *[1u8, 6, 11].get(rng.gen_range(0..3usize)).unwrap(),
        Band::Ghz5 => *[36u8, 40, 149, 153].get(rng.gen_range(0..4usize)).unwrap(),
    };
    DeviceSpec {
        mac,
        vendor: vendor.to_string(),
        role: Role::AccessPoint,
        band,
        channel,
        behavior,
        ssid: format!("{vendor}-{index:04}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper_exactly() {
        let pop = CityPopulation::table2(1);
        assert_eq!(pop.clients().count() as u32, TOTAL_CLIENTS);
        assert_eq!(pop.aps().count() as u32, TOTAL_APS);
        assert_eq!(pop.devices.len() as u32, 5328);
    }

    #[test]
    fn vendor_counts_match_table2_top20() {
        let pop = CityPopulation::table2(1);
        let clients = pop.vendor_counts(Role::Client);
        for (vendor, count) in TABLE2_CLIENTS {
            let found = clients.iter().find(|(v, _)| v == vendor);
            assert_eq!(found.map(|(_, c)| *c), Some(*count), "client {vendor}");
        }
        let aps = pop.vendor_counts(Role::AccessPoint);
        for (vendor, count) in TABLE2_APS {
            let found = aps.iter().find(|(v, _)| v == vendor);
            assert_eq!(found.map(|(_, c)| *c), Some(*count), "AP {vendor}");
        }
    }

    #[test]
    fn top20_really_are_the_top20() {
        // The long tail must not out-rank any named vendor on its side.
        let pop = CityPopulation::table2(1);
        let clients = pop.vendor_counts(Role::Client);
        let named: std::collections::HashSet<&str> =
            TABLE2_CLIENTS.iter().map(|(v, _)| *v).collect();
        for (v, _) in clients.iter().take(20) {
            assert!(named.contains(v.as_str()), "{v} intruded into the top-20");
        }
    }

    #[test]
    fn vendor_cardinalities_match() {
        let pop = CityPopulation::table2(1);
        assert_eq!(pop.vendor_counts(Role::Client).len() as u32, CLIENT_VENDORS);
        assert_eq!(
            pop.vendor_counts(Role::AccessPoint).len() as u32,
            AP_VENDORS
        );
        assert_eq!(pop.distinct_vendor_count() as u32, TOTAL_VENDORS);
    }

    #[test]
    fn macs_unique_and_attributable() {
        let pop = CityPopulation::table2(1);
        let mut seen = std::collections::HashSet::new();
        for d in &pop.devices {
            assert!(seen.insert(d.mac), "duplicate MAC {}", d.mac);
            assert_eq!(
                pop.registry.vendor_of(d.mac),
                Some(d.vendor.as_str()),
                "attribution failed for {}",
                d.mac
            );
        }
    }

    #[test]
    fn espressif_clients_are_iot_power_save() {
        // The paper: "we found 47 IoT devices that utilize Espressif WiFi
        // chipsets" — all power-save candidates for the drain attack.
        let pop = CityPopulation::table2(1);
        let esp: Vec<&DeviceSpec> = pop.clients().filter(|d| d.vendor == "Espressif").collect();
        assert_eq!(esp.len(), 47);
        assert!(esp.iter().all(|d| d.behavior.power_save.is_some()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CityPopulation::table2(7);
        let b = CityPopulation::table2(7);
        assert_eq!(a.devices, b.devices);
        let c = CityPopulation::table2(8);
        // Counts identical, sampled details may differ.
        assert_eq!(a.devices.len(), c.devices.len());
    }

    #[test]
    fn aps_have_ssids_clients_do_not() {
        let pop = CityPopulation::table2(2);
        assert!(pop.aps().all(|d| !d.ssid.is_empty()));
        assert!(pop.clients().all(|d| d.ssid.is_empty()));
    }

    #[test]
    fn some_aps_deauth_and_some_have_pmf() {
        let pop = CityPopulation::table2(3);
        let deauthers = pop.aps().filter(|d| d.behavior.deauth_on_fake).count();
        let pmf = pop.aps().filter(|d| d.behavior.pmf).count();
        let total = pop.aps().count();
        assert!(deauthers > total / 10 && deauthers < total / 3);
        assert!(pmf > total / 20 && pmf < total / 5);
    }

    #[test]
    fn randomized_macs_lose_vendor_attribution() {
        let pop = CityPopulation::table2(1).with_randomized_client_macs(0.5, 9);
        let apple_randomized = pop
            .clients()
            .filter(|d| d.vendor == "Apple" && pop.registry.vendor_of(d.mac).is_none())
            .count();
        // ~50% of 143 Apple clients lose their OUI.
        assert!(
            (40..=110).contains(&apple_randomized),
            "randomised {apple_randomized}"
        );
        // Randomised MACs are locally administered and unique.
        let mut seen = std::collections::HashSet::new();
        for d in &pop.devices {
            assert!(seen.insert(d.mac));
            if pop.registry.vendor_of(d.mac).is_none() {
                assert!(d.mac.is_locally_administered());
                assert!(d.mac.is_unicast());
            }
        }
        // APs and non-phone vendors untouched.
        assert!(pop.aps().all(|d| pop.registry.vendor_of(d.mac).is_some()));
        assert!(pop
            .clients()
            .filter(|d| d.vendor == "Espressif")
            .all(|d| pop.registry.vendor_of(d.mac).is_some()));
    }

    #[test]
    fn randomization_fraction_zero_is_identity() {
        let a = CityPopulation::table2(4);
        let b = CityPopulation::table2(4).with_randomized_client_macs(0.0, 9);
        assert_eq!(a.devices, b.devices);
    }

    #[test]
    fn synthetic_city_mixes_roles_and_keeps_macs_unique() {
        let pop = CityPopulation::synthetic_city(1000, 7);
        assert_eq!(pop.devices.len(), 1000);
        assert_eq!(pop.clients().count(), 300);
        assert_eq!(pop.aps().count(), 700);
        let mut seen = std::collections::HashSet::new();
        for d in &pop.devices {
            assert!(seen.insert(d.mac), "duplicate MAC {}", d.mac);
            assert_eq!(pop.registry.vendor_of(d.mac), Some(d.vendor.as_str()));
        }
        // ~5% of clients run IoT power save; APs are all quiet.
        let ps = pop.clients().filter(|d| d.behavior.power_save.is_some());
        assert_eq!(ps.count(), 15);
        assert!(pop.aps().all(|d| !d.behavior.deauth_on_fake));
    }

    #[test]
    fn synthetic_city_is_deterministic_and_seed_sensitive() {
        let a = CityPopulation::synthetic_city(500, 3);
        let b = CityPopulation::synthetic_city(500, 3);
        assert_eq!(a.devices, b.devices);
        let c = CityPopulation::synthetic_city(500, 4);
        assert_ne!(a.devices, c.devices);
    }

    #[test]
    fn spread_is_exact_and_minimum_one() {
        let names: Vec<String> = (0..10).map(|i| format!("v{i}")).collect();
        let refs: Vec<&String> = names.iter().collect();
        let out = spread(23, &refs);
        assert_eq!(out.iter().map(|(_, c)| c).sum::<u32>(), 23);
        assert!(out.iter().all(|(_, c)| *c >= 1));
        assert_eq!(out[0].1, 3); // 23 = 10*2 + 3 → first three get 3
        assert_eq!(out[3].1, 2);
    }
}
