//! Quickstart: the paper's core observation in thirty lines.
//!
//! A victim client sits on a WPA2 network. A stranger with no key
//! material sends it a fake, unencrypted null-function frame — and the
//! victim politely acknowledges. Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use polite_wifi::frame::{builder, MacAddr};
use polite_wifi::mac::StationConfig;
use polite_wifi::pcap::{trace, LinkType};
use polite_wifi::phy::rate::BitRate;
use polite_wifi::sim::{SimConfig, Simulator};

fn main() {
    let victim_mac: MacAddr = "f2:6e:0b:11:22:33".parse().unwrap();
    let ap_mac: MacAddr = "68:02:b8:00:00:01".parse().unwrap();

    let mut sim = Simulator::new(SimConfig::default(), 2020);

    // A private WPA2 network: AP + associated client.
    let ap = sim.add_node(
        StationConfig::access_point(ap_mac, "PrivateNet"),
        (2.0, 0.0),
    );
    let victim = sim.add_node(StationConfig::client(victim_mac), (0.0, 0.0));
    sim.station_mut(victim).associate(ap_mac);
    sim.station_mut(ap).associate(victim_mac);

    // The attacker: $12 dongle, forged MAC, no credentials.
    let attacker = sim.add_node(StationConfig::client(MacAddr::FAKE), (6.0, 0.0));
    sim.set_monitor(attacker, true);
    sim.set_retries(attacker, false);

    // Send one fake frame; the only valid field is the victim's address.
    let fake = builder::fake_null_frame(victim_mac, MacAddr::FAKE);
    sim.inject(50_000, attacker, fake, BitRate::Mbps1);
    sim.run_until(200_000);

    println!("== What the attacker's monitor-mode radio captured ==\n");
    println!("{}", trace::format_capture(&sim.node(attacker).capture));

    println!(
        "victim ACKs sent: {}   (frame was discarded above the MAC: {})",
        sim.station(victim).stats.acks_sent,
        sim.station(victim).stats.discarded_after_ack,
    );
    assert_eq!(sim.station(victim).stats.acks_sent, 1);

    // Save a Wireshark-compatible pcap of the exchange.
    let path = std::env::temp_dir().join("polite_wifi_quickstart.pcap");
    sim.node(attacker)
        .capture
        .write_pcap_file(&path, LinkType::Ieee80211Radiotap)
        .expect("write pcap");
    println!(
        "\npcap written to {} — open it in Wireshark.",
        path.display()
    );
}
